//! Black-box baselines — the prior art the paper compares against.
//!
//! The generalized retrieval algorithm of \[12\] drives the same binary
//! capacity scaling as Algorithm 6 but treats maximum flow as a **black
//! box**: every probe and every increment step recomputes the flow from
//! zero, discarding all previously computed flow values. \[18\]'s solver is
//! the Ford-Fulkerson equivalent.
//!
//! These baselines are deliberately implemented with the *same* graph,
//! cost model and increment logic as the integrated solvers, so execution
//! time comparisons isolate exactly the paper's claimed effect: flow
//! conservation.

use crate::error::SolveError;
use crate::increment::MinCostIncrementer;
use crate::network::RetrievalInstance;
use crate::obs::trace::{TraceEvent, Tracer};
use crate::pr::{budget_work, outcome_with_budget};
use crate::schedule::{RetrievalOutcome, SolveStats};
use crate::solver::RetrievalSolver;
use crate::workspace::{on_graph, ArmedBudget, Workspace};
use rds_flow::ford_fulkerson::ford_fulkerson;
use rds_flow::graph::{ArenaIndex, FlowGraph};
use rds_storage::time::Micros;

/// Runs the binary capacity-scaling driver with a from-scratch max-flow at
/// every probe and every increment.
///
/// Returns `Ok(None)` at the exact optimum, or `Ok(Some(lower_bound))`
/// when the [`ArmedBudget`] expired and the search was finalized at the
/// feasible upper bound instead (one extra from-scratch solve).
fn blackbox_binary<W: ArenaIndex, F>(
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    stats: &mut SolveStats,
    tracer: &mut Tracer,
    budget: ArmedBudget,
    mut fresh_max_flow: F,
) -> Result<Option<Micros>, SolveError>
where
    F: FnMut(&mut FlowGraph<W>, &mut SolveStats, &mut Tracer) -> i64,
{
    let q = inst.query_size() as i64;
    if q == 0 {
        return Ok(None);
    }
    // Same warm-started bounds as the integrated driver, so comparisons
    // still isolate flow conservation alone.
    let (mut t_min, mut t_max, min_speed) = inst.tightened_bounds(&mut Vec::new());

    // `t_max` stays feasible throughout the search, so the bail-out can
    // always finalize there with one more from-scratch solve.
    #[allow(clippy::too_many_arguments)]
    fn bail<W: ArenaIndex, F>(
        inst: &RetrievalInstance,
        g: &mut FlowGraph<W>,
        stats: &mut SolveStats,
        tracer: &mut Tracer,
        fresh_max_flow: &mut F,
        q: i64,
        t_lo: Micros,
        t_hi: Micros,
    ) -> Result<Option<Micros>, SolveError>
    where
        F: FnMut(&mut FlowGraph<W>, &mut SolveStats, &mut Tracer) -> i64,
    {
        inst.set_caps_for_budget(g, t_hi);
        let flow = fresh_max_flow(g, stats, tracer);
        if flow != q {
            return Err(SolveError::Infeasible {
                bucket: None,
                delivered: flow,
                required: q,
            });
        }
        Ok(Some(t_lo))
    }

    while t_max - t_min >= min_speed {
        if budget.expired(budget_work(stats)) {
            return bail(inst, g, stats, tracer, &mut fresh_max_flow, q, t_min, t_max);
        }
        let t_mid = t_min.midpoint(t_max);
        inst.set_caps_for_budget(g, t_mid);
        tracer.emit(TraceEvent::ProbeStart { budget: t_mid });
        let flow = fresh_max_flow(g, stats, tracer);
        stats.probes += 1;
        tracer.emit(TraceEvent::ProbeEnd {
            budget: t_mid,
            feasible: flow == q,
        });
        if flow != q {
            t_min = t_mid;
        } else {
            t_max = t_mid;
        }
    }

    inst.set_caps_for_budget(g, t_min);
    let mut inc = MinCostIncrementer::new(inst);
    let mut delivered = 0;
    loop {
        // Incremented capacities never exceed `capacity_within(t_max)`, so
        // finalizing at the feasible bound is still a pure capacity raise.
        if budget.expired(budget_work(stats)) {
            return bail(inst, g, stats, tracer, &mut fresh_max_flow, q, t_min, t_max);
        }
        let raised = inc.increment(inst, g);
        stats.increments += 1;
        tracer.emit(TraceEvent::CapacityIncrement {
            edges: raised as u32,
        });
        if raised == 0 {
            return Err(SolveError::Infeasible {
                bucket: None,
                delivered,
                required: q,
            });
        }
        delivered = fresh_max_flow(g, stats, tracer);
        if delivered == q {
            return Ok(None);
        }
    }
}

/// The push-relabel black-box baseline of \[12\] (binary capacity scaling,
/// LEDA-style from-scratch max-flow per run).
#[derive(Clone, Copy, Debug, Default)]
pub struct BlackBoxPushRelabel;

impl RetrievalSolver for BlackBoxPushRelabel {
    fn name(&self) -> &'static str {
        "BB-PR"
    }

    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), false);
        let budget = ArmedBudget::start(ws.armed_budget());
        ws.begin(inst)?;
        let mut stats = SolveStats::default();
        let (s, t) = (inst.source(), inst.sink());
        let result = on_graph!(ws, |g| {
            let engine = &mut ws.engine;
            match blackbox_binary(
                inst,
                &mut *g,
                &mut stats,
                &mut ws.tracer,
                budget,
                |g, stats, tracer| {
                    stats.maxflow_calls += 1;
                    let (pushes_before, relabels_before) = engine.op_counts();
                    let flow = engine.max_flow(g, s, t);
                    let (pushes, relabels) = engine.op_counts();
                    let (pushes, relabels) = (pushes - pushes_before, relabels - relabels_before);
                    stats.pushes += pushes;
                    stats.relabels += relabels;
                    tracer.emit(TraceEvent::RelabelPass { pushes, relabels });
                    flow
                },
            ) {
                Ok(bailed) => outcome_with_budget(inst, &*g, stats, bailed, &mut ws.tracer),
                Err(e) => Err(e),
            }
        });
        ws.complete();
        result
    }
}

/// A Ford-Fulkerson black-box baseline in the style of \[18\]: the same
/// binary-scaling driver with a from-scratch augmenting-path max-flow.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlackBoxFordFulkerson;

impl RetrievalSolver for BlackBoxFordFulkerson {
    fn name(&self) -> &'static str {
        "BB-FF"
    }

    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), false);
        let budget = ArmedBudget::start(ws.armed_budget());
        ws.begin(inst)?;
        let mut stats = SolveStats::default();
        let (s, t) = (inst.source(), inst.sink());
        let result = on_graph!(ws, |g| {
            match blackbox_binary(
                inst,
                &mut *g,
                &mut stats,
                &mut ws.tracer,
                budget,
                |g, stats, _tracer| {
                    stats.maxflow_calls += 1;
                    g.zero_flows();
                    ford_fulkerson(g, s, t)
                },
            ) {
                Ok(bailed) => outcome_with_budget(inst, &*g, stats, bailed, &mut ws.tracer),
                Err(e) => Err(e),
            }
        });
        ws.complete();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr::PushRelabelBinary;
    use crate::verify::{assert_outcome_valid, oracle_optimal_response};
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_decluster::rda::RandomDuplicateAllocation;
    use rds_storage::experiments::{experiment, paper_example, ExperimentId};

    #[test]
    fn blackbox_matches_integrated_on_paper_example() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        for (r, c) in [(3usize, 2usize), (7, 7), (2, 5)] {
            let q = RangeQuery::new(0, 0, r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
            let bb = BlackBoxPushRelabel.solve(&inst).unwrap();
            let int = PushRelabelBinary.solve(&inst).unwrap();
            assert_eq!(bb.response_time, int.response_time, "query {r}x{c}");
            assert_outcome_valid(&inst, &bb);
        }
    }

    #[test]
    fn blackbox_ff_agrees_too() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(2, 3, 4, 4);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let a = BlackBoxFordFulkerson.solve(&inst).unwrap();
        let b = BlackBoxPushRelabel.solve(&inst).unwrap();
        assert_eq!(a.response_time, b.response_time);
        assert_eq!(a.response_time, oracle_optimal_response(&inst));
    }

    #[test]
    fn blackbox_performs_more_maxflow_work() {
        // The integrated algorithm replaces from-scratch max-flow calls
        // with resumes; the black box must call max-flow at least once per
        // probe and per increment.
        let system = experiment(ExperimentId::Exp5, 8, 5);
        let alloc = RandomDuplicateAllocation::two_site(8, 5);
        let q = RangeQuery::new(0, 0, 8, 8);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(8));
        let bb = BlackBoxPushRelabel.solve(&inst).unwrap();
        assert_eq!(
            bb.stats.maxflow_calls,
            bb.stats.probes + bb.stats.increments
        );
        let int = PushRelabelBinary.solve(&inst).unwrap();
        assert_eq!(int.stats.maxflow_calls, 0);
        assert_eq!(bb.response_time, int.response_time);
    }

    #[test]
    fn random_instances_agree_with_oracle() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(77);
        for case in 0..6 {
            let n = rng.gen_range(3..7);
            let system = experiment(ExperimentId::Exp4, n, rng.gen_u64());
            let alloc = OrthogonalAllocation::new(n, Placement::PerSite);
            let q = RangeQuery::new(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(1..=n),
                rng.gen_range(1..=n),
            );
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
            let bb = BlackBoxPushRelabel.solve(&inst).unwrap();
            assert_eq!(
                bb.response_time,
                oracle_optimal_response(&inst),
                "case {case}"
            );
        }
    }

    #[test]
    fn empty_query() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        assert_eq!(BlackBoxPushRelabel.solve(&inst).unwrap().flow_value, 0);
        assert_eq!(BlackBoxFordFulkerson.solve(&inst).unwrap().flow_value, 0);
    }
}
