//! Unified solver selection: [`SolverKind`], [`SolverSpec`] and the
//! [`AnySolver`] dispatch type.
//!
//! The seven solver structs all implement
//! [`RetrievalSolver`], but picking one at
//! runtime previously meant threading a generic parameter (or a `Box<dyn>`)
//! through every layer. [`SolverKind`] names each algorithm as plain data,
//! [`SolverSpec`] pairs a kind with its tuning knobs (thread count, warm
//! start, cache capacity), and [`SolverSpec::build`] materializes an
//! [`AnySolver`] — a zero-allocation enum that dispatches to the concrete
//! solver and inherits its delta-solve capability.

use crate::blackbox::{BlackBoxFordFulkerson, BlackBoxPushRelabel};
use crate::error::SolveError;
use crate::ff::{FordFulkersonBasic, FordFulkersonIncremental};
use crate::network::RetrievalInstance;
use crate::obs::slo::SloPolicy;
use crate::parallel::ParallelPushRelabelBinary;
use crate::pr::{PushRelabelBinary, PushRelabelIncremental};
use crate::schedule::RetrievalOutcome;
use crate::solver::RetrievalSolver;
use crate::workspace::Workspace;
use std::time::Duration;

/// An *anytime* solve budget: limits on how long one solve may run.
///
/// Solvers check the budget at probe-scale boundaries (binary-search
/// probes, capacity-increment steps, augmenting-path searches). When it
/// expires mid-solve they stop refining, finalize the best feasible
/// schedule currently known (the greedy upper bound `t_max`, tightened by
/// every feasible probe so far), and report the remaining
/// achieved-vs-optimal gap in
/// [`SolveStats::anytime_gap`](crate::schedule::SolveStats::anytime_gap)
/// plus a [`TraceEvent::BudgetExpired`](crate::obs::trace::TraceEvent::BudgetExpired).
/// An expired budget therefore still yields a complete, feasible — just
/// possibly sub-optimal — schedule; it never fails the solve.
///
/// The default budget is unlimited, and an unlimited budget is
/// guaranteed bit-identical to pre-budget behaviour: no clock is read
/// and no extra work is done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SolveBudget {
    /// Wall-clock limit for one solve (`None` = unlimited). Checked with
    /// a monotonic clock at probe boundaries, so overshoot is bounded by
    /// one probe's work.
    pub wall_clock: Option<Duration>,
    /// Limit on probe-scale solver steps — binary-search probes,
    /// capacity increments and augmenting-path searches all count
    /// (`None` = unlimited). Deterministic, unlike wall-clock limits:
    /// the same instance and limit always expire at the same point.
    pub max_probes: Option<u64>,
}

impl SolveBudget {
    /// No limits (the default): solves run to the exact optimum.
    pub const UNLIMITED: SolveBudget = SolveBudget {
        wall_clock: None,
        max_probes: None,
    };

    /// An unlimited budget.
    pub fn unlimited() -> SolveBudget {
        SolveBudget::UNLIMITED
    }

    /// Limits wall-clock time per solve.
    pub fn with_wall_clock(mut self, limit: Duration) -> SolveBudget {
        self.wall_clock = Some(limit);
        self
    }

    /// Limits probe-scale solver steps per solve.
    pub fn with_max_probes(mut self, limit: u64) -> SolveBudget {
        self.max_probes = Some(limit);
        self
    }

    /// True when neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none() && self.max_probes.is_none()
    }
}

/// Which index/capacity width the workspace's graph arena should use.
///
/// The arena is monomorphized over its capacity width (`i32` or `i64`).
/// Compact (`i32`) capacities halve the hot `cap`/`flow` arrays and
/// measurably speed up discharge-heavy solves, but can only hold
/// instances whose total capacity at the upper response-time bound fits
/// in 31 bits. `Auto` (the default) measures each instance's bound and
/// picks Compact whenever it is safe, falling back to Wide otherwise —
/// so most callers never need to touch this knob.
///
/// Both layouts are bit-identical in results: schedules, op counts and
/// phase digests do not depend on the width.
///
/// Marked `#[non_exhaustive]`: future PRs may add widths (e.g. `u16`
/// capacities for unit-capacity retrieval networks), so match with a
/// `_` arm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ArenaLayout {
    /// Per-instance automatic selection: Compact when the instance's
    /// capacity bound fits `i32` with a safety margin, Wide otherwise.
    #[default]
    Auto,
    /// Force the `i32` arena. Solves fail with
    /// [`SolveError::ArenaOverflow`](crate::error::SolveError) when the
    /// instance does not fit.
    Compact,
    /// Force the `i64` arena (the pre-PR-9 behaviour).
    Wide,
}

impl ArenaLayout {
    /// Stable snake_case name for reports and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            ArenaLayout::Auto => "auto",
            ArenaLayout::Compact => "compact",
            ArenaLayout::Wide => "wide",
        }
    }
}

/// Names one of the seven retrieval algorithms.
///
/// All kinds compute the same optimal response time; they differ in
/// execution cost and in whether they can delta-solve a warm workspace
/// (see [`SolverKind::supports_delta`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SolverKind {
    /// Algorithm 1: integrated Ford-Fulkerson for the basic problem
    /// (identical disks, no initial load).
    FordFulkersonBasic,
    /// Algorithms 2+3: integrated incremental Ford-Fulkerson for the
    /// generalized problem.
    FordFulkersonIncremental,
    /// Algorithm 5: integrated incremental push-relabel.
    PushRelabelIncremental,
    /// Algorithm 6: push-relabel with binary capacity scaling and flow
    /// conservation across probes. The paper's headline algorithm.
    PushRelabelBinary,
    /// Section V: lock-free parallel variant of Algorithm 6.
    ParallelPushRelabelBinary,
    /// Baseline \[12\]: binary scaling over a from-scratch push-relabel.
    BlackBoxPushRelabel,
    /// Baseline \[18\]: from-scratch Ford-Fulkerson per probe.
    BlackBoxFordFulkerson,
}

impl SolverKind {
    /// Every kind, in the paper's presentation order.
    pub const ALL: [SolverKind; 7] = [
        SolverKind::FordFulkersonBasic,
        SolverKind::FordFulkersonIncremental,
        SolverKind::PushRelabelIncremental,
        SolverKind::PushRelabelBinary,
        SolverKind::ParallelPushRelabelBinary,
        SolverKind::BlackBoxPushRelabel,
        SolverKind::BlackBoxFordFulkerson,
    ];

    /// The solver's report name — identical to
    /// [`RetrievalSolver::name`] of the solver it builds.
    pub fn name(self) -> &'static str {
        // Delegate to the concrete solvers so the two can never drift.
        match self {
            SolverKind::FordFulkersonBasic => FordFulkersonBasic.name(),
            SolverKind::FordFulkersonIncremental => FordFulkersonIncremental.name(),
            SolverKind::PushRelabelIncremental => PushRelabelIncremental.name(),
            SolverKind::PushRelabelBinary => PushRelabelBinary.name(),
            SolverKind::ParallelPushRelabelBinary => ParallelPushRelabelBinary::default().name(),
            SolverKind::BlackBoxPushRelabel => BlackBoxPushRelabel.name(),
            SolverKind::BlackBoxFordFulkerson => BlackBoxFordFulkerson.name(),
        }
    }

    /// Whether the built solver can delta-solve a warm workspace. Kinds
    /// that return `false` still work under `warm_start(true)` — sessions
    /// fall back to a full rebuild per query.
    pub fn supports_delta(self) -> bool {
        SolverSpec::new(self).build().supports_delta()
    }
}

/// Which schedule, among all response-time-optimal ones, a solve should
/// return.
///
/// The paper's algorithms accept *any* maximum flow at the optimal
/// response time `t*`; per-disk load spread among those flows varies
/// wildly. A refining objective runs a min-cost pass over the residual
/// network after `t*` is fixed — holding the flow value (and therefore
/// `t*`) constant — to pick a load-balanced optimum.
///
/// Marked `#[non_exhaustive]`: future PRs may add objectives (placement
/// and repair co-optimization are on the roadmap), so match with a `_`
/// arm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ScheduleObjective {
    /// Return the first flow the solver finds at `t*` — no refinement,
    /// the pre-objective behaviour and the cheapest option.
    #[default]
    FirstFeasible,
    /// Minimize total weighted load `Σ_j k_j · C_j` (buckets served per
    /// disk times that disk's per-bucket access cost), breaking ties
    /// toward even per-disk counts. Never increases total weighted load
    /// relative to any feasible schedule.
    MinTotalLoad,
    /// Minimize a piecewise-convex penalty on per-disk weighted load
    /// (each additional bucket on disk `j` costs `k · C_j`), which pushes
    /// down the maximum and spreads load across disks.
    MinMaxLoad,
}

impl ScheduleObjective {
    /// True when this objective runs a refinement pass after the solve.
    pub fn refines(self) -> bool {
        !matches!(self, ScheduleObjective::FirstFeasible)
    }

    /// Stable snake_case name for reports and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleObjective::FirstFeasible => "first_feasible",
            ScheduleObjective::MinTotalLoad => "min_total_load",
            ScheduleObjective::MinMaxLoad => "min_max_load",
        }
    }
}

/// A solver kind plus its tuning knobs — the value accepted by
/// [`Engine::builder`](crate::engine::Engine::builder).
///
/// ```
/// use rds_core::prelude::*;
///
/// let spec = SolverSpec::new(SolverKind::PushRelabelBinary)
///     .objective(ScheduleObjective::MinTotalLoad)
///     .reuse(ReusePolicy::warm());
/// assert_eq!(spec.build().name(), "PR-binary");
/// assert!(spec.warm_start);
/// ```
///
/// Marked `#[non_exhaustive]`: construct with [`SolverSpec::new`] and
/// the chainable setters; fields stay readable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolverSpec {
    /// Which algorithm to run.
    pub kind: SolverKind,
    /// Worker threads for [`SolverKind::ParallelPushRelabelBinary`]
    /// (`0` = the solver's default of 2, the paper's evaluation setup);
    /// ignored by the other kinds. The engine sizes its shared worker
    /// pool from this value.
    pub parallelism: usize,
    /// Reuse each stream's previous flow via delta patching when the
    /// consecutive queries overlap. Kinds without delta support fall
    /// back to a rebuild per query.
    pub warm_start: bool,
    /// Per-stream schedule cache entries (`0` disables the cache).
    pub cache_capacity: usize,
    /// Which response-time-optimal schedule to return.
    pub objective: ScheduleObjective,
    /// Anytime budget applied to every solve ([`SolveBudget::UNLIMITED`]
    /// by default — exact optimum, pre-budget behaviour).
    pub budget: SolveBudget,
    /// Per-priority-class service-level objectives tracked by
    /// [`Engine::serve`](crate::engine::Engine::serve). The default
    /// policy tracks the Interactive and Standard classes; use
    /// [`SloPolicy::disabled`] to silence the `rds_slo_*` series.
    pub slo: SloPolicy,
    /// Which arena width workspaces solve in
    /// ([`ArenaLayout::Auto`] by default — per-instance selection).
    pub arena_layout: ArenaLayout,
    /// Fuse batch-window drains: when the serving loop drains K coalesced
    /// queries in one window, schedule the K solves *across* the engine's
    /// shared worker pool (distinct streams in parallel, each solve
    /// sequential) with epoch-shared CSR topology planes, instead of
    /// solving them serially. Off by default. Results are bit-identical
    /// to the unfused path; only wall-clock and plane residency change.
    pub batch_fuse: bool,
}

impl SolverSpec {
    /// A spec with reuse disabled and no refining objective — the
    /// pre-reuse behaviour.
    pub fn new(kind: SolverKind) -> SolverSpec {
        SolverSpec {
            kind,
            parallelism: 0,
            warm_start: false,
            cache_capacity: 0,
            objective: ScheduleObjective::FirstFeasible,
            budget: SolveBudget::UNLIMITED,
            slo: SloPolicy::default(),
            arena_layout: ArenaLayout::Auto,
            batch_fuse: false,
        }
    }

    /// Enables or disables fused batch-window solves (see
    /// [`SolverSpec::batch_fuse`]).
    pub fn batch_fuse(mut self, on: bool) -> SolverSpec {
        self.batch_fuse = on;
        self
    }

    /// Sets the worker-thread count for the parallel solver (and the
    /// engine's shared worker pool).
    pub fn parallelism(mut self, threads: usize) -> SolverSpec {
        self.parallelism = threads;
        self
    }

    /// Sets the arena width policy for every solve under this spec.
    pub fn arena_layout(mut self, layout: ArenaLayout) -> SolverSpec {
        self.arena_layout = layout;
        self
    }

    /// Enables or disables warm-start delta solving.
    pub fn warm_start(mut self, on: bool) -> SolverSpec {
        self.warm_start = on;
        self
    }

    /// Sets the per-stream schedule cache capacity.
    pub fn cache_capacity(mut self, entries: usize) -> SolverSpec {
        self.cache_capacity = entries;
        self
    }

    /// Sets the schedule objective.
    pub fn objective(mut self, objective: ScheduleObjective) -> SolverSpec {
        self.objective = objective;
        self
    }

    /// Sets the anytime solve budget.
    pub fn budget(mut self, budget: SolveBudget) -> SolverSpec {
        self.budget = budget;
        self
    }

    /// Sets the per-class SLO policy tracked by the serving loop.
    pub fn slo(mut self, policy: SloPolicy) -> SolverSpec {
        self.slo = policy;
        self
    }

    /// Sets both reuse knobs from a [`ReusePolicy`](crate::session::ReusePolicy).
    pub fn reuse(mut self, policy: crate::session::ReusePolicy) -> SolverSpec {
        self.warm_start = policy.warm_start;
        self.cache_capacity = policy.cache_capacity;
        self
    }

    /// The reuse policy half of the spec.
    pub fn reuse_policy(&self) -> crate::session::ReusePolicy {
        crate::session::ReusePolicy {
            warm_start: self.warm_start,
            cache_capacity: self.cache_capacity,
        }
    }

    /// Solves one instance under this spec's kind and objective: a cold
    /// solve in a fresh workspace, followed by the objective's
    /// refinement pass at the fixed optimal response time. The
    /// convenience entry point for one-off refined solves; sessions and
    /// the engine refine in their own reusable workspaces.
    pub fn solve(&self, instance: &RetrievalInstance) -> Result<RetrievalOutcome, SolveError> {
        let mut ws = Workspace::new();
        ws.set_arena_layout(self.arena_layout);
        ws.arm_budget(self.budget);
        let mut outcome = self.build().solve_in(instance, &mut ws)?;
        crate::refine::refine_in(self.objective, instance, &mut ws, &mut outcome)?;
        Ok(outcome)
    }

    /// Materializes the solver this spec describes.
    pub fn build(&self) -> AnySolver {
        match self.kind {
            SolverKind::FordFulkersonBasic => AnySolver::FordFulkersonBasic(FordFulkersonBasic),
            SolverKind::FordFulkersonIncremental => {
                AnySolver::FordFulkersonIncremental(FordFulkersonIncremental)
            }
            SolverKind::PushRelabelIncremental => {
                AnySolver::PushRelabelIncremental(PushRelabelIncremental)
            }
            SolverKind::PushRelabelBinary => AnySolver::PushRelabelBinary(PushRelabelBinary),
            SolverKind::ParallelPushRelabelBinary => {
                AnySolver::ParallelPushRelabelBinary(if self.parallelism == 0 {
                    ParallelPushRelabelBinary::default()
                } else {
                    ParallelPushRelabelBinary::new(self.parallelism)
                })
            }
            SolverKind::BlackBoxPushRelabel => AnySolver::BlackBoxPushRelabel(BlackBoxPushRelabel),
            SolverKind::BlackBoxFordFulkerson => {
                AnySolver::BlackBoxFordFulkerson(BlackBoxFordFulkerson)
            }
        }
    }
}

impl From<SolverKind> for SolverSpec {
    fn from(kind: SolverKind) -> SolverSpec {
        SolverSpec::new(kind)
    }
}

/// Enum dispatch over the seven concrete solvers.
///
/// Unlike `Box<dyn RetrievalSolver>` this is `Copy`-cheap, `Send + Sync`
/// by construction, and needs no allocation — the engine clones one per
/// shard worker.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub enum AnySolver {
    /// See [`SolverKind::FordFulkersonBasic`].
    FordFulkersonBasic(FordFulkersonBasic),
    /// See [`SolverKind::FordFulkersonIncremental`].
    FordFulkersonIncremental(FordFulkersonIncremental),
    /// See [`SolverKind::PushRelabelIncremental`].
    PushRelabelIncremental(PushRelabelIncremental),
    /// See [`SolverKind::PushRelabelBinary`].
    PushRelabelBinary(PushRelabelBinary),
    /// See [`SolverKind::ParallelPushRelabelBinary`].
    ParallelPushRelabelBinary(ParallelPushRelabelBinary),
    /// See [`SolverKind::BlackBoxPushRelabel`].
    BlackBoxPushRelabel(BlackBoxPushRelabel),
    /// See [`SolverKind::BlackBoxFordFulkerson`].
    BlackBoxFordFulkerson(BlackBoxFordFulkerson),
}

macro_rules! dispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            AnySolver::FordFulkersonBasic($s) => $body,
            AnySolver::FordFulkersonIncremental($s) => $body,
            AnySolver::PushRelabelIncremental($s) => $body,
            AnySolver::PushRelabelBinary($s) => $body,
            AnySolver::ParallelPushRelabelBinary($s) => $body,
            AnySolver::BlackBoxPushRelabel($s) => $body,
            AnySolver::BlackBoxFordFulkerson($s) => $body,
        }
    };
}

impl AnySolver {
    /// The kind this solver was built from.
    pub fn kind(&self) -> SolverKind {
        match self {
            AnySolver::FordFulkersonBasic(_) => SolverKind::FordFulkersonBasic,
            AnySolver::FordFulkersonIncremental(_) => SolverKind::FordFulkersonIncremental,
            AnySolver::PushRelabelIncremental(_) => SolverKind::PushRelabelIncremental,
            AnySolver::PushRelabelBinary(_) => SolverKind::PushRelabelBinary,
            AnySolver::ParallelPushRelabelBinary(_) => SolverKind::ParallelPushRelabelBinary,
            AnySolver::BlackBoxPushRelabel(_) => SolverKind::BlackBoxPushRelabel,
            AnySolver::BlackBoxFordFulkerson(_) => SolverKind::BlackBoxFordFulkerson,
        }
    }
}

impl RetrievalSolver for AnySolver {
    fn name(&self) -> &'static str {
        dispatch!(self, s => s.name())
    }

    fn solve_in(
        &self,
        instance: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        dispatch!(self, s => s.solve_in(instance, ws))
    }

    fn supports_delta(&self) -> bool {
        dispatch!(self, s => s.supports_delta())
    }

    fn resume_in(
        &self,
        instance: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        dispatch!(self, s => s.resume_in(instance, ws))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};

    #[test]
    fn kind_names_match_built_solvers() {
        for kind in SolverKind::ALL {
            let solver = SolverSpec::new(kind).build();
            assert_eq!(kind.name(), solver.name());
            assert_eq!(solver.kind(), kind);
        }
        let names: Vec<&str> = SolverKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "FF-basic",
                "FF-incremental",
                "PR-incremental",
                "PR-binary",
                "PR-binary-parallel",
                "BB-PR",
                "BB-FF",
            ]
        );
    }

    #[test]
    fn delta_support_matrix() {
        use SolverKind::*;
        for kind in SolverKind::ALL {
            let expected = matches!(
                kind,
                PushRelabelIncremental | PushRelabelBinary | ParallelPushRelabelBinary
            );
            assert_eq!(kind.supports_delta(), expected, "{}", kind.name());
        }
    }

    #[test]
    fn spec_builder_sets_knobs() {
        let spec = SolverSpec::new(SolverKind::ParallelPushRelabelBinary)
            .parallelism(2)
            .warm_start(true)
            .cache_capacity(4)
            .arena_layout(ArenaLayout::Wide)
            .batch_fuse(true);
        assert_eq!(spec.parallelism, 2);
        assert!(spec.warm_start);
        assert_eq!(spec.cache_capacity, 4);
        assert_eq!(spec.arena_layout, ArenaLayout::Wide);
        assert!(spec.batch_fuse);
        assert!(!SolverSpec::new(SolverKind::PushRelabelBinary).batch_fuse);
        assert_eq!(ArenaLayout::default(), ArenaLayout::Auto);
        assert_eq!(ArenaLayout::Compact.name(), "compact");
        let policy = spec.reuse_policy();
        assert!(policy.warm_start);
        assert_eq!(policy.cache_capacity, 4);
        assert_eq!(
            SolverSpec::from(SolverKind::PushRelabelBinary).kind,
            SolverKind::PushRelabelBinary
        );
    }

    #[test]
    fn every_kind_solves_a_common_instance() {
        // Homogeneous and unloaded so FF-basic's precondition holds too.
        let system = rds_storage::model::SystemConfig::homogeneous(rds_storage::specs::CHEETAH, 14);
        let alloc = OrthogonalAllocation::paper_7x7();
        let inst =
            RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, 3, 2).buckets(7));
        let reference = SolverSpec::new(SolverKind::PushRelabelBinary)
            .build()
            .solve(&inst)
            .unwrap();
        for kind in SolverKind::ALL {
            let outcome = SolverSpec::new(kind).build().solve(&inst).unwrap();
            assert_eq!(
                outcome.response_time,
                reference.response_time,
                "{} disagrees",
                kind.name()
            );
        }
    }
}
