//! Independent verification oracles for retrieval outcomes.
//!
//! The paper validates its algorithms by checking that all of them report
//! the same total optimal response time over 1000 queries; this module
//! provides the machinery for the same check plus a slower but independent
//! optimum oracle (linear scan of candidate budgets with a Dinic max-flow,
//! sharing no code with the solvers under test).

use crate::fault::{HealthMap, PartialSchedule};
use crate::network::RetrievalInstance;
use crate::schedule::RetrievalOutcome;
use rds_decluster::allocation::ReplicaSource;
use rds_decluster::query::Bucket;
use rds_flow::dinic::Dinic;
use rds_storage::model::SystemConfig;
use rds_storage::time::Micros;

/// Computes the optimal response time by brute force: every achievable
/// response time is `D_j + X_j + k·C_j` for some disk `j` and bucket count
/// `k ≤ in_degree(j)`; scan the candidates in increasing order and return
/// the first admitting a complete flow (checked with Dinic).
///
/// Exponentially simpler than the solvers — use in tests only.
pub fn oracle_optimal_response(inst: &RetrievalInstance) -> Micros {
    let q = inst.query_size() as i64;
    if q == 0 {
        return Micros::ZERO;
    }
    let mut candidates: Vec<Micros> = inst
        .disks
        .iter()
        .enumerate()
        .flat_map(|(j, d)| (1..=inst.replicas_per_disk[j]).map(move |k| d.completion_time(k)))
        .collect();
    candidates.sort_unstable();
    candidates.dedup();

    let mut dinic = Dinic::new();
    for t in candidates {
        let mut g = inst.graph.clone();
        inst.set_caps_for_budget(&mut g, t);
        if dinic.max_flow(&mut g, inst.source(), inst.sink()) == q {
            return t;
        }
    }
    panic!("retrieval instance is infeasible");
}

/// Asserts the structural validity of an outcome:
///
/// * every requested bucket is scheduled exactly once, in order;
/// * every assignment uses a disk that actually stores the bucket
///   (an edge `bucket → disk` exists in the instance network);
/// * the reported response time equals the schedule's recomputed response
///   time, and the flow value equals the query size.
pub fn assert_outcome_valid(inst: &RetrievalInstance, outcome: &RetrievalOutcome) {
    assert_eq!(
        outcome.schedule.len(),
        inst.query_size(),
        "schedule must cover the whole query"
    );
    assert_eq!(outcome.flow_value as usize, inst.query_size());
    for (i, &(bucket, disk)) in outcome.schedule.assignments().iter().enumerate() {
        assert_eq!(bucket, inst.buckets[i], "assignment order must match query");
        let bv = inst.bucket_vertex(i);
        let dv = inst.disk_vertex(disk);
        let stored = inst
            .graph
            .out_edges(bv)
            .iter()
            .any(|&e| e % 2 == 0 && inst.graph.target(e as usize) == dv);
        assert!(
            stored,
            "bucket {bucket} scheduled on non-replica disk {disk}"
        );
    }
    assert_eq!(
        outcome.response_time,
        outcome.schedule.response_time(&inst.disks),
        "reported response time must match the schedule"
    );
}

/// Asserts the validity of a best-effort [`PartialSchedule`] produced
/// under `health` for the request `requested`:
///
/// * served and unservable buckets partition the request, in order;
/// * every unservable bucket truly has all replicas offline, and every
///   served bucket has at least one live replica;
/// * no served bucket is assigned to an offline disk;
/// * the embedded outcome passes [`assert_outcome_valid`] against the
///   instance rebuilt from the servable subset under the same health.
pub fn assert_partial_outcome_valid<A: ReplicaSource + ?Sized>(
    system: &SystemConfig,
    alloc: &A,
    health: &HealthMap,
    requested: &[Bucket],
    partial: &PartialSchedule,
) {
    let served: Vec<Bucket> = partial
        .outcome
        .schedule
        .assignments()
        .iter()
        .map(|&(b, _)| b)
        .collect();
    let mut merged = Vec::with_capacity(requested.len());
    let (mut si, mut ui) = (0, 0);
    for &b in requested {
        if si < served.len() && served[si] == b {
            si += 1;
        } else if ui < partial.unservable.len() && partial.unservable[ui] == b {
            ui += 1;
        } else {
            panic!("bucket {b} neither served nor reported unservable");
        }
        merged.push(b);
    }
    assert_eq!(si, served.len(), "schedule serves buckets never requested");
    assert_eq!(
        ui,
        partial.unservable.len(),
        "unservable list contains buckets never requested"
    );

    for &b in &partial.unservable {
        let live = alloc.replicas(b).iter().any(|d| !health.is_offline(d));
        assert!(
            !live,
            "bucket {b} reported unservable but has a live replica"
        );
    }
    for &(b, d) in partial.outcome.schedule.assignments() {
        assert!(
            !health.is_offline(d),
            "bucket {b} scheduled on offline disk {d}"
        );
    }

    let inst = RetrievalInstance::build_with_health(system, alloc, &served, health)
        .expect("served buckets all have live replicas");
    assert_outcome_valid(&inst, &partial.outcome);
}

/// Asserts that `outcome` is valid **and** optimal per the oracle.
pub fn assert_outcome_optimal(inst: &RetrievalInstance, outcome: &RetrievalOutcome) {
    assert_outcome_valid(inst, outcome);
    assert_eq!(
        outcome.response_time,
        oracle_optimal_response(inst),
        "outcome is feasible but not optimal"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Schedule, SolveStats};
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Bucket, Query, RangeQuery};
    use rds_storage::experiments::paper_example;
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;

    fn instance() -> RetrievalInstance {
        let system = SystemConfig::homogeneous(CHEETAH, 7);
        let alloc = OrthogonalAllocation::new(7, Placement::SingleSite);
        let q1 = RangeQuery::new(0, 0, 3, 2);
        RetrievalInstance::build(&system, &alloc, &q1.buckets(7))
    }

    #[test]
    fn oracle_on_basic_q1_is_one_access() {
        let inst = instance();
        assert_eq!(oracle_optimal_response(&inst), Micros::from_tenths_ms(61));
    }

    #[test]
    fn oracle_on_generalized_example() {
        // Single bucket [0,0]: copies on a site-1 raptor (8.3+3 = 11.3ms)
        // and some site-2 disk (6.1+1 = 7.1ms or 13.2+1 = 14.2ms).
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(0, 0, 1, 1);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let t = oracle_optimal_response(&inst);
        assert!(
            t == Micros::from_tenths_ms(71)
                || t == Micros::from_tenths_ms(113)
                || t == Micros::from_tenths_ms(142),
            "unexpected oracle optimum {t}"
        );
    }

    #[test]
    fn oracle_empty_query_is_zero() {
        let system = SystemConfig::homogeneous(CHEETAH, 3);
        let alloc = OrthogonalAllocation::new(3, Placement::SingleSite);
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        assert_eq!(oracle_optimal_response(&inst), Micros::ZERO);
    }

    #[test]
    #[should_panic(expected = "schedule must cover")]
    fn incomplete_schedule_rejected() {
        let inst = instance();
        let outcome = RetrievalOutcome {
            schedule: Schedule::new(vec![]),
            response_time: Micros::ZERO,
            flow_value: 0,
            stats: SolveStats::default(),
        };
        assert_outcome_valid(&inst, &outcome);
    }

    #[test]
    #[should_panic(expected = "non-replica disk")]
    fn wrong_disk_rejected() {
        let inst = instance();
        // Assign every bucket to a disk that is *not* among its replicas:
        // find one per bucket.
        let assignments: Vec<(Bucket, usize)> = inst
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let bv = inst.bucket_vertex(i);
                let replica_disks: Vec<usize> = inst
                    .graph
                    .out_edges(bv)
                    .iter()
                    .filter(|&&e| e % 2 == 0)
                    .map(|&e| inst.disk_of_vertex(inst.graph.target(e as usize)))
                    .collect();
                let bad = (0..inst.num_disks())
                    .find(|d| !replica_disks.contains(d))
                    .expect("some non-replica disk exists");
                (b, bad)
            })
            .collect();
        let schedule = Schedule::new(assignments);
        let rt = schedule.response_time(&inst.disks);
        let outcome = RetrievalOutcome {
            flow_value: schedule.len() as u64,
            schedule,
            response_time: rt,
            stats: SolveStats::default(),
        };
        assert_outcome_valid(&inst, &outcome);
    }
}
