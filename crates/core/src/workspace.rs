//! Reusable solver scratch state.
//!
//! Every solve needs a mutable copy of the instance's flow network plus
//! engine state (excess arrays, DFS stacks, flow/excess snapshots for the
//! `StoreFlows`/`RestoreFlows` rollbacks of Algorithm 6). A [`Workspace`]
//! owns all of it and survives across solves, so a caller issuing many
//! queries — a [`crate::session::RetrievalSession`] or the batch
//! [`crate::engine::Engine`] — pays the allocations once instead of per
//! query. [`crate::solver::RetrievalSolver::solve_in`] threads a workspace
//! through every solver; the `solve` convenience wrapper spins up a fresh
//! one per call.
//!
//! A workspace is not tied to a solver or an instance: the same one can
//! serve different algorithms and differently-shaped queries back to
//! back. Buffers only ever grow.

use crate::network::RetrievalInstance;
use crate::obs::trace::{TraceEvent, TraceSink, Tracer};
use crate::spec::SolveBudget;
use rds_flow::ford_fulkerson::AugmentingPath;
use rds_flow::graph::FlowGraph;
use rds_flow::incremental::IncrementalMaxFlow;
use rds_flow::parallel::ParallelPushRelabel;
use rds_flow::push_relabel::PushRelabel;
use std::time::Instant;

/// Reusable buffers and engine state shared by all solvers.
#[derive(Debug)]
pub struct Workspace {
    /// Scratch copy of the instance's flow network.
    pub(crate) graph: FlowGraph,
    /// Sequential push-relabel engine (Algorithm 4) with its height,
    /// queue and excess arrays.
    pub(crate) engine: PushRelabel,
    /// Reusable DFS state for the Ford-Fulkerson solvers.
    pub(crate) search: AugmentingPath,
    /// `StoreFlows` snapshot buffer (Algorithm 6 line 31).
    pub(crate) stored_flows: Vec<i64>,
    /// Excess snapshot buffer paired with `stored_flows`.
    pub(crate) stored_excess: Vec<i64>,
    /// Cached parallel engine, keyed by its worker-thread count. Kept
    /// alive so its worker pool persists across solves.
    parallel: Option<(usize, ParallelPushRelabel)>,
    /// Solver-phase event tracer; disabled (single-branch emits) until a
    /// sink is installed. See [`crate::obs::trace`].
    pub(crate) tracer: Tracer,
    /// Warm flow state staged by a delta-capable caller (see
    /// [`Workspace::stage_warm`]), consumed by the next
    /// [`crate::solver::RetrievalSolver::resume_in`].
    pub(crate) warm_flows: Vec<i64>,
    /// Excess vector paired with `warm_flows`.
    pub(crate) warm_excess: Vec<i64>,
    /// Bucket slots whose identity changed since the warm flow was
    /// captured; their stale flow units are cancelled before resuming.
    pub(crate) warm_changed: Vec<usize>,
    /// Whether warm state is currently staged.
    pub(crate) warm_staged: bool,
    /// Min-cost refinement scratch (cycle canceler + cost vectors); see
    /// [`crate::refine`].
    pub(crate) refine: crate::refine::RefineScratch,
    /// Anytime budget applied to every solve run in this workspace (see
    /// [`Workspace::arm_budget`]); unlimited by default.
    budget: SolveBudget,
    /// Set while a solve is in flight; a solve that unwinds (panics) never
    /// clears it, marking the scratch state as suspect. See
    /// [`Workspace::take_poisoned`].
    poisoned: bool,
    solves: u64,
    /// High-water instance size staged so far. Once an instance fits both
    /// marks, copying it into the scratch graph must not grow any arena
    /// buffer — [`Workspace::stage_graph`] debug-asserts it.
    hw_vertices: usize,
    hw_edge_slots: usize,
}

/// Error returned by [`Workspace::take_poisoned`] when a previous solve
/// unwound mid-flight and left the scratch state unspecified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoisonedWorkspace;

impl std::fmt::Display for PoisonedWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workspace poisoned: a previous solve panicked mid-flight; scratch state was reset"
        )
    }
}

impl std::error::Error for PoisonedWorkspace {}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace::new()
    }
}

impl Workspace {
    /// Creates an empty workspace; all buffers grow on first use.
    pub fn new() -> Workspace {
        Workspace {
            graph: FlowGraph::default(),
            engine: PushRelabel::new(),
            search: AugmentingPath::new(),
            stored_flows: Vec::new(),
            stored_excess: Vec::new(),
            parallel: None,
            tracer: Tracer::disabled(),
            warm_flows: Vec::new(),
            warm_excess: Vec::new(),
            warm_changed: Vec::new(),
            warm_staged: false,
            refine: crate::refine::RefineScratch::default(),
            budget: SolveBudget::UNLIMITED,
            poisoned: false,
            solves: 0,
            hw_vertices: 0,
            hw_edge_slots: 0,
        }
    }

    /// Copies `inst`'s network into the scratch graph. In debug builds,
    /// asserts the steady-state contract of the CSR arena: an instance no
    /// larger than any previously staged one (by vertex and edge-slot
    /// count — arena buffers never shrink, so those two marks bound every
    /// buffer length) must copy in with **zero** graph allocations.
    fn stage_graph(&mut self, inst: &RetrievalInstance) {
        #[cfg(debug_assertions)]
        let (fits, events_before) = (
            inst.graph.num_vertices() <= self.hw_vertices
                && inst.graph.num_edge_slots() <= self.hw_edge_slots,
            self.graph.arena().allocation_events(),
        );
        self.graph.copy_from(&inst.graph);
        #[cfg(debug_assertions)]
        debug_assert!(
            !fits || self.graph.arena().allocation_events() == events_before,
            "steady-state solve allocated graph memory: instance fits the \
             high-water size ({} vertices / {} edge slots) but copy_from \
             grew an arena buffer",
            self.hw_vertices,
            self.hw_edge_slots,
        );
        self.hw_vertices = self.hw_vertices.max(inst.graph.num_vertices());
        self.hw_edge_slots = self.hw_edge_slots.max(inst.graph.num_edge_slots());
    }

    /// Installs a ring-buffer [`crate::obs::trace::Recorder`] with the
    /// given capacity as this workspace's trace sink; subsequent solves
    /// emit [`TraceEvent`]s into it. No-op without the `trace` feature.
    pub fn install_recorder(&mut self, capacity: usize) {
        self.tracer.install_recorder(capacity);
    }

    /// Installs an arbitrary [`TraceSink`] (e.g. a closure) as this
    /// workspace's trace sink. No-op without the `trace` feature.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.set_sink(sink);
    }

    /// Removes any installed sink, returning emits to single-branch
    /// no-ops.
    pub fn disable_tracing(&mut self) {
        self.tracer.disable();
    }

    /// The installed ring-buffer recorder, if one was installed via
    /// [`Workspace::install_recorder`] (always `None` without the `trace`
    /// feature).
    pub fn recorder(&self) -> Option<&crate::obs::trace::Recorder> {
        self.tracer.recorder()
    }

    /// Mutable access to the installed ring-buffer recorder, e.g. to
    /// `clear()` it between solves.
    pub fn recorder_mut(&mut self) -> Option<&mut crate::obs::trace::Recorder> {
        self.tracer.recorder_mut()
    }

    /// Number of solves that ran in this workspace — the amortization
    /// counter surfaced by [`crate::engine::EngineStats`].
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Sets the anytime [`SolveBudget`] applied to every subsequent solve
    /// in this workspace (until re-armed). Wall-clock limits start
    /// counting at each solve's entry, not at arming time.
    pub fn arm_budget(&mut self, budget: SolveBudget) {
        self.budget = budget;
    }

    /// The currently armed budget.
    pub fn armed_budget(&self) -> SolveBudget {
        self.budget
    }
}

/// A [`SolveBudget`] materialized at solve entry: the wall-clock limit
/// becomes an absolute deadline, the probe limit a work ceiling. Solvers
/// copy one out of the workspace before split-borrowing its parts and
/// poll [`ArmedBudget::expired`] at probe-scale boundaries.
///
/// When the budget is unlimited, `expired` never reads a clock — an
/// unbudgeted solve is bit-identical (and branch-for-branch equal) to
/// pre-budget behaviour.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArmedBudget {
    deadline: Option<Instant>,
    max_work: Option<u64>,
}

impl ArmedBudget {
    /// Arms `budget` now: wall-clock limits anchor to the current instant.
    pub(crate) fn start(budget: SolveBudget) -> ArmedBudget {
        ArmedBudget {
            deadline: budget.wall_clock.map(|d| Instant::now() + d),
            max_work: budget.max_probes,
        }
    }

    /// True when `work` probe-scale steps exhaust the budget or the
    /// wall-clock deadline has passed. The clock is read only when a
    /// deadline exists.
    #[inline]
    pub(crate) fn expired(&self, work: u64) -> bool {
        if let Some(limit) = self.max_work {
            if work >= limit {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

impl Workspace {
    /// Whether the last solve unwound without completing.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Checks and clears the poison flag. A workspace is poisoned when a
    /// solve panicked mid-flight (detected by the [`crate::engine::Engine`]
    /// shard containment, or by any caller using `catch_unwind`): the
    /// scratch graph and engine state are then unspecified. `Err` reports
    /// the condition; in both cases the workspace is safe to reuse
    /// afterwards, because every solve re-initializes the scratch state —
    /// only staged warm state is discarded here.
    pub fn take_poisoned(&mut self) -> Result<(), PoisonedWorkspace> {
        self.warm_staged = false;
        if std::mem::take(&mut self.poisoned) {
            Err(PoisonedWorkspace)
        } else {
            Ok(())
        }
    }

    /// Marks the completion of an orderly solve (success *or* clean
    /// error); called by every solver on its way out.
    pub(crate) fn complete(&mut self) {
        self.poisoned = false;
    }

    /// Stages warm state for the next [`crate::solver::RetrievalSolver::resume_in`]:
    /// the flow/excess snapshot captured after the previous solve of this
    /// stream, plus the bucket slots whose identity changed since then.
    pub(crate) fn stage_warm(&mut self, flows: &[i64], excess: &[i64], changed: &[usize]) {
        flows.clone_into(&mut self.warm_flows);
        excess.clone_into(&mut self.warm_excess);
        changed.clone_into(&mut self.warm_changed);
        self.warm_staged = true;
    }

    /// Discards any staged warm state (e.g. after a fallback to a cold
    /// solve).
    pub(crate) fn clear_warm_stage(&mut self) {
        self.warm_staged = false;
    }

    /// Prepares the workspace for one solve of `inst`: copies the
    /// instance's network into the scratch graph (reusing its buffers)
    /// and clears the engine excess left by the previous solve.
    pub(crate) fn begin(&mut self, inst: &RetrievalInstance) {
        self.solves += 1;
        self.warm_staged = false;
        self.poisoned = true;
        self.stage_graph(inst);
        self.engine.reset_excess(self.graph.num_vertices());
        self.tracer.emit(TraceEvent::SolveStart {
            query_size: inst.query_size() as u32,
        });
    }

    /// Warm counterpart of [`Workspace::begin`]: copies the (patched)
    /// instance network, then loads the staged warm flow into the scratch
    /// graph and the staged excesses into the sequential engine. Returns
    /// `false` — leaving the workspace untouched — when no warm state is
    /// staged.
    pub(crate) fn begin_warm(&mut self, inst: &RetrievalInstance) -> bool {
        if !self.warm_staged {
            return false;
        }
        self.warm_staged = false;
        self.solves += 1;
        self.poisoned = true;
        self.stage_graph(inst);
        // The patch may have appended fresh replica arcs; they carry no
        // warm flow.
        self.warm_flows.resize(self.graph.num_edge_slots(), 0);
        self.graph.restore_flows(&self.warm_flows);
        self.engine.reset_excess(self.graph.num_vertices());
        for (v, &x) in self.warm_excess.iter().enumerate() {
            if x != 0 {
                self.engine.set_excess(v, x);
            }
        }
        self.tracer.emit(TraceEvent::SolveStart {
            query_size: inst.query_size() as u32,
        });
        true
    }

    /// Warm counterpart of [`Workspace::parallel_parts`]: like
    /// [`Workspace::begin_warm`], but the staged excesses are loaded into
    /// the cached parallel engine. Returns the scratch graph, the engine,
    /// the excess-snapshot scratch buffer, the staged changed-slot list
    /// and the tracer.
    #[allow(clippy::type_complexity)]
    pub(crate) fn warm_parallel_parts(
        &mut self,
        inst: &RetrievalInstance,
        threads: usize,
    ) -> Option<(
        &mut FlowGraph,
        &mut ParallelPushRelabel,
        &mut Vec<i64>,
        &[usize],
        &mut Tracer,
    )> {
        if !self.warm_staged {
            return None;
        }
        self.warm_staged = false;
        self.solves += 1;
        self.poisoned = true;
        self.stage_graph(inst);
        self.warm_flows.resize(self.graph.num_edge_slots(), 0);
        self.graph.restore_flows(&self.warm_flows);
        self.tracer.emit(TraceEvent::SolveStart {
            query_size: inst.query_size() as u32,
        });
        let rebuild = match &self.parallel {
            Some((t, _)) => *t != threads,
            None => true,
        };
        if rebuild {
            self.parallel = Some((threads, ParallelPushRelabel::new(threads)));
        }
        let (_, engine) = self.parallel.as_mut().expect("parallel engine cached");
        engine.invalidate_topology();
        engine.reset_excess(self.graph.num_vertices());
        for (v, &x) in self.warm_excess.iter().enumerate() {
            if x != 0 {
                engine.set_excess(v, x);
            }
        }
        Some((
            &mut self.graph,
            engine,
            &mut self.stored_excess,
            &self.warm_changed,
            &mut self.tracer,
        ))
    }

    /// Borrows the scratch graph together with the cached parallel engine
    /// for `threads` workers, the two snapshot buffers and the tracer.
    /// (Dis)connects the engine from the previous solve: excess is zeroed
    /// and the topology snapshot invalidated, since the cache is keyed on
    /// graph size only and this solve's graph may differ in shape.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parallel_parts(
        &mut self,
        threads: usize,
    ) -> (
        &mut FlowGraph,
        &mut ParallelPushRelabel,
        &mut Vec<i64>,
        &mut Vec<i64>,
        &mut Tracer,
    ) {
        let rebuild = match &self.parallel {
            Some((t, _)) => *t != threads,
            None => true,
        };
        if rebuild {
            self.parallel = Some((threads, ParallelPushRelabel::new(threads)));
        }
        let (_, engine) = self.parallel.as_mut().expect("parallel engine cached");
        engine.invalidate_topology();
        engine.reset_excess(self.graph.num_vertices());
        (
            &mut self.graph,
            engine,
            &mut self.stored_flows,
            &mut self.stored_excess,
            &mut self.tracer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;

    #[test]
    fn begin_copies_instance_graph_and_counts() {
        let system = SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
        let q = RangeQuery::new(0, 0, 2, 2);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(4));
        let mut ws = Workspace::new();
        assert_eq!(ws.solves(), 0);
        ws.begin(&inst);
        assert_eq!(ws.solves(), 1);
        assert_eq!(ws.graph.num_vertices(), inst.graph.num_vertices());
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
        // A second begin reuses the same buffers without issue.
        ws.begin(&inst);
        assert_eq!(ws.solves(), 2);
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
    }

    #[test]
    fn steady_state_begin_performs_zero_graph_allocations() {
        let system = SystemConfig::homogeneous(CHEETAH, 6);
        let alloc = OrthogonalAllocation::new(6, Placement::SingleSite);
        let big = RangeQuery::new(0, 0, 3, 3);
        let small = RangeQuery::new(1, 1, 2, 2);
        let big_inst = RetrievalInstance::build(&system, &alloc, &big.buckets(6));
        let small_inst = RetrievalInstance::build(&system, &alloc, &small.buckets(6));
        let mut ws = Workspace::new();
        ws.begin(&big_inst);
        let events = ws.graph.arena().allocation_events();
        // Same-size and smaller instances must reuse the arena byte-for-byte
        // (stage_graph debug-asserts this too; the explicit check keeps the
        // contract pinned in release builds).
        for _ in 0..5 {
            ws.begin(&big_inst);
            ws.begin(&small_inst);
        }
        assert_eq!(
            ws.graph.arena().allocation_events(),
            events,
            "steady-state begin grew an arena buffer"
        );
    }

    #[test]
    fn parallel_engine_is_cached_per_thread_count() {
        let mut ws = Workspace::new();
        ws.graph = FlowGraph::new(2);
        {
            let (_, engine, _, _, _) = ws.parallel_parts(2);
            engine.set_excess(0, 7);
        }
        {
            // Same thread count: same engine, but excess was reset.
            let (_, engine, _, _, _) = ws.parallel_parts(2);
            assert_eq!(engine.excess(0), 0);
        }
    }
}
