//! Reusable solver scratch state.
//!
//! Every solve needs a mutable copy of the instance's flow network plus
//! engine state (excess arrays, DFS stacks, flow/excess snapshots for the
//! `StoreFlows`/`RestoreFlows` rollbacks of Algorithm 6). A [`Workspace`]
//! owns all of it and survives across solves, so a caller issuing many
//! queries — a [`crate::session::RetrievalSession`] or the batch
//! [`crate::engine::Engine`] — pays the allocations once instead of per
//! query. [`crate::solver::RetrievalSolver::solve_in`] threads a workspace
//! through every solver; the `solve` convenience wrapper spins up a fresh
//! one per call.
//!
//! A workspace is not tied to a solver or an instance: the same one can
//! serve different algorithms and differently-shaped queries back to
//! back. Buffers only ever grow.

use crate::network::RetrievalInstance;
use crate::obs::trace::{TraceEvent, TraceSink, Tracer};
use rds_flow::ford_fulkerson::AugmentingPath;
use rds_flow::graph::FlowGraph;
use rds_flow::incremental::IncrementalMaxFlow;
use rds_flow::parallel::ParallelPushRelabel;
use rds_flow::push_relabel::PushRelabel;

/// Reusable buffers and engine state shared by all solvers.
#[derive(Debug)]
pub struct Workspace {
    /// Scratch copy of the instance's flow network.
    pub(crate) graph: FlowGraph,
    /// Sequential push-relabel engine (Algorithm 4) with its height,
    /// queue and excess arrays.
    pub(crate) engine: PushRelabel,
    /// Reusable DFS state for the Ford-Fulkerson solvers.
    pub(crate) search: AugmentingPath,
    /// `StoreFlows` snapshot buffer (Algorithm 6 line 31).
    pub(crate) stored_flows: Vec<i64>,
    /// Excess snapshot buffer paired with `stored_flows`.
    pub(crate) stored_excess: Vec<i64>,
    /// Cached parallel engine, keyed by its worker-thread count. Kept
    /// alive so its worker pool persists across solves.
    parallel: Option<(usize, ParallelPushRelabel)>,
    /// Solver-phase event tracer; disabled (single-branch emits) until a
    /// sink is installed. See [`crate::obs::trace`].
    pub(crate) tracer: Tracer,
    solves: u64,
}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace::new()
    }
}

impl Workspace {
    /// Creates an empty workspace; all buffers grow on first use.
    pub fn new() -> Workspace {
        Workspace {
            graph: FlowGraph::default(),
            engine: PushRelabel::new(),
            search: AugmentingPath::new(),
            stored_flows: Vec::new(),
            stored_excess: Vec::new(),
            parallel: None,
            tracer: Tracer::disabled(),
            solves: 0,
        }
    }

    /// Installs a ring-buffer [`crate::obs::trace::Recorder`] with the
    /// given capacity as this workspace's trace sink; subsequent solves
    /// emit [`TraceEvent`]s into it. No-op without the `trace` feature.
    pub fn install_recorder(&mut self, capacity: usize) {
        self.tracer.install_recorder(capacity);
    }

    /// Installs an arbitrary [`TraceSink`] (e.g. a closure) as this
    /// workspace's trace sink. No-op without the `trace` feature.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.set_sink(sink);
    }

    /// Removes any installed sink, returning emits to single-branch
    /// no-ops.
    pub fn disable_tracing(&mut self) {
        self.tracer.disable();
    }

    /// The installed ring-buffer recorder, if one was installed via
    /// [`Workspace::install_recorder`] (always `None` without the `trace`
    /// feature).
    pub fn recorder(&self) -> Option<&crate::obs::trace::Recorder> {
        self.tracer.recorder()
    }

    /// Mutable access to the installed ring-buffer recorder, e.g. to
    /// `clear()` it between solves.
    pub fn recorder_mut(&mut self) -> Option<&mut crate::obs::trace::Recorder> {
        self.tracer.recorder_mut()
    }

    /// Number of solves that ran in this workspace — the amortization
    /// counter surfaced by [`crate::engine::EngineStats`].
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Prepares the workspace for one solve of `inst`: copies the
    /// instance's network into the scratch graph (reusing its buffers)
    /// and clears the engine excess left by the previous solve.
    pub(crate) fn begin(&mut self, inst: &RetrievalInstance) {
        self.solves += 1;
        self.graph.copy_from(&inst.graph);
        self.engine.reset_excess(self.graph.num_vertices());
        self.tracer.emit(TraceEvent::SolveStart {
            query_size: inst.query_size() as u32,
        });
    }

    /// Borrows the scratch graph together with the cached parallel engine
    /// for `threads` workers, the two snapshot buffers and the tracer.
    /// (Dis)connects the engine from the previous solve: excess is zeroed
    /// and the topology snapshot invalidated, since the cache is keyed on
    /// graph size only and this solve's graph may differ in shape.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parallel_parts(
        &mut self,
        threads: usize,
    ) -> (
        &mut FlowGraph,
        &mut ParallelPushRelabel,
        &mut Vec<i64>,
        &mut Vec<i64>,
        &mut Tracer,
    ) {
        let rebuild = match &self.parallel {
            Some((t, _)) => *t != threads,
            None => true,
        };
        if rebuild {
            self.parallel = Some((threads, ParallelPushRelabel::new(threads)));
        }
        let (_, engine) = self.parallel.as_mut().expect("parallel engine cached");
        engine.invalidate_topology();
        engine.reset_excess(self.graph.num_vertices());
        (
            &mut self.graph,
            engine,
            &mut self.stored_flows,
            &mut self.stored_excess,
            &mut self.tracer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;

    #[test]
    fn begin_copies_instance_graph_and_counts() {
        let system = SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
        let q = RangeQuery::new(0, 0, 2, 2);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(4));
        let mut ws = Workspace::new();
        assert_eq!(ws.solves(), 0);
        ws.begin(&inst);
        assert_eq!(ws.solves(), 1);
        assert_eq!(ws.graph.num_vertices(), inst.graph.num_vertices());
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
        // A second begin reuses the same buffers without issue.
        ws.begin(&inst);
        assert_eq!(ws.solves(), 2);
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
    }

    #[test]
    fn parallel_engine_is_cached_per_thread_count() {
        let mut ws = Workspace::new();
        ws.graph = FlowGraph::new(2);
        {
            let (_, engine, _, _, _) = ws.parallel_parts(2);
            engine.set_excess(0, 7);
        }
        {
            // Same thread count: same engine, but excess was reset.
            let (_, engine, _, _, _) = ws.parallel_parts(2);
            assert_eq!(engine.excess(0), 0);
        }
    }
}
