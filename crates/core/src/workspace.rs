//! Reusable solver scratch state.
//!
//! Every solve needs a mutable copy of the instance's flow network plus
//! engine state (excess arrays, DFS stacks, flow/excess snapshots for the
//! `StoreFlows`/`RestoreFlows` rollbacks of Algorithm 6). A [`Workspace`]
//! owns all of it and survives across solves, so a caller issuing many
//! queries — a [`crate::session::RetrievalSession`] or the batch
//! [`crate::engine::Engine`] — pays the allocations once instead of per
//! query. [`crate::solver::RetrievalSolver::solve_in`] threads a workspace
//! through every solver; the `solve` convenience wrapper spins up a fresh
//! one per call.
//!
//! A workspace is not tied to a solver or an instance: the same one can
//! serve different algorithms and differently-shaped queries back to
//! back. Buffers only ever grow.

use crate::network::RetrievalInstance;
use rds_flow::ford_fulkerson::AugmentingPath;
use rds_flow::graph::FlowGraph;
use rds_flow::incremental::IncrementalMaxFlow;
use rds_flow::parallel::ParallelPushRelabel;
use rds_flow::push_relabel::PushRelabel;

/// Reusable buffers and engine state shared by all solvers.
#[derive(Debug)]
pub struct Workspace {
    /// Scratch copy of the instance's flow network.
    pub(crate) graph: FlowGraph,
    /// Sequential push-relabel engine (Algorithm 4) with its height,
    /// queue and excess arrays.
    pub(crate) engine: PushRelabel,
    /// Reusable DFS state for the Ford-Fulkerson solvers.
    pub(crate) search: AugmentingPath,
    /// `StoreFlows` snapshot buffer (Algorithm 6 line 31).
    pub(crate) stored_flows: Vec<i64>,
    /// Excess snapshot buffer paired with `stored_flows`.
    pub(crate) stored_excess: Vec<i64>,
    /// Cached parallel engine, keyed by its worker-thread count. Kept
    /// alive so its worker pool persists across solves.
    parallel: Option<(usize, ParallelPushRelabel)>,
    solves: u64,
}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace::new()
    }
}

impl Workspace {
    /// Creates an empty workspace; all buffers grow on first use.
    pub fn new() -> Workspace {
        Workspace {
            graph: FlowGraph::default(),
            engine: PushRelabel::new(),
            search: AugmentingPath::new(),
            stored_flows: Vec::new(),
            stored_excess: Vec::new(),
            parallel: None,
            solves: 0,
        }
    }

    /// Number of solves that ran in this workspace — the amortization
    /// counter surfaced by [`crate::engine::EngineStats`].
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Prepares the workspace for one solve of `inst`: copies the
    /// instance's network into the scratch graph (reusing its buffers)
    /// and clears the engine excess left by the previous solve.
    pub(crate) fn begin(&mut self, inst: &RetrievalInstance) {
        self.solves += 1;
        self.graph.copy_from(&inst.graph);
        self.engine.reset_excess(self.graph.num_vertices());
    }

    /// Borrows the scratch graph together with the cached parallel engine
    /// for `threads` workers and the two snapshot buffers. (Dis)connects
    /// the engine from the previous solve: excess is zeroed and the
    /// topology snapshot invalidated, since the cache is keyed on graph
    /// size only and this solve's graph may differ in shape.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parallel_parts(
        &mut self,
        threads: usize,
    ) -> (
        &mut FlowGraph,
        &mut ParallelPushRelabel,
        &mut Vec<i64>,
        &mut Vec<i64>,
    ) {
        let rebuild = match &self.parallel {
            Some((t, _)) => *t != threads,
            None => true,
        };
        if rebuild {
            self.parallel = Some((threads, ParallelPushRelabel::new(threads)));
        }
        let (_, engine) = self.parallel.as_mut().expect("parallel engine cached");
        engine.invalidate_topology();
        engine.reset_excess(self.graph.num_vertices());
        (
            &mut self.graph,
            engine,
            &mut self.stored_flows,
            &mut self.stored_excess,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;

    #[test]
    fn begin_copies_instance_graph_and_counts() {
        let system = SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
        let q = RangeQuery::new(0, 0, 2, 2);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(4));
        let mut ws = Workspace::new();
        assert_eq!(ws.solves(), 0);
        ws.begin(&inst);
        assert_eq!(ws.solves(), 1);
        assert_eq!(ws.graph.num_vertices(), inst.graph.num_vertices());
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
        // A second begin reuses the same buffers without issue.
        ws.begin(&inst);
        assert_eq!(ws.solves(), 2);
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
    }

    #[test]
    fn parallel_engine_is_cached_per_thread_count() {
        let mut ws = Workspace::new();
        ws.graph = FlowGraph::new(2);
        {
            let (_, engine, _, _) = ws.parallel_parts(2);
            engine.set_excess(0, 7);
        }
        {
            // Same thread count: same engine, but excess was reset.
            let (_, engine, _, _) = ws.parallel_parts(2);
            assert_eq!(engine.excess(0), 0);
        }
    }
}
