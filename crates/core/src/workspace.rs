//! Reusable solver scratch state.
//!
//! Every solve needs a mutable copy of the instance's flow network plus
//! engine state (excess arrays, DFS stacks, flow/excess snapshots for the
//! `StoreFlows`/`RestoreFlows` rollbacks of Algorithm 6). A [`Workspace`]
//! owns all of it and survives across solves, so a caller issuing many
//! queries — a [`crate::session::RetrievalSession`] or the batch
//! [`crate::engine::Engine`] — pays the allocations once instead of per
//! query. [`crate::solver::RetrievalSolver::solve_in`] threads a workspace
//! through every solver; the `solve` convenience wrapper spins up a fresh
//! one per call.
//!
//! A workspace is not tied to a solver or an instance: the same one can
//! serve different algorithms and differently-shaped queries back to
//! back. Buffers only ever grow.

use crate::error::SolveError;
use crate::network::RetrievalInstance;
use crate::obs::trace::{TraceEvent, TraceSink, Tracer};
use crate::spec::{ArenaLayout, SolveBudget};
use rds_flow::ford_fulkerson::AugmentingPath;
use rds_flow::graph::FlowGraph;
use rds_flow::parallel::{ParallelPushRelabel, WorkerPool};
use rds_flow::push_relabel::PushRelabel;
use std::time::Instant;

/// Which arena the workspace's *last* [`Workspace::begin`] staged into —
/// the resolved (never `Auto`) side of [`ArenaLayout`]. Solver bodies
/// dispatch on this via [`on_graph!`]; both arms are monomorphized, so
/// the hot path never sees a width branch inside a discharge loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ActiveWidth {
    /// The `i64` arena ([`Workspace::graph`]).
    Wide,
    /// The `i32` arena ([`Workspace::graph32`]).
    Compact,
}

/// Runs `$body` against the workspace's active graph, binding `$g` to
/// `&mut $ws.graph` (wide) or `&mut $ws.graph32` (compact). The borrow
/// is field-precise, so the body may still use the workspace's *other*
/// fields (`$ws.engine`, `$ws.tracer`, `$ws.stored_flows`, ...) — only
/// whole-`$ws` method calls are off-limits inside the body.
macro_rules! on_graph {
    ($ws:expr, |$g:ident| $body:expr) => {
        match $ws.active {
            $crate::workspace::ActiveWidth::Wide => {
                let $g = &mut $ws.graph;
                $body
            }
            $crate::workspace::ActiveWidth::Compact => {
                let $g = &mut $ws.graph32;
                $body
            }
        }
    };
}
pub(crate) use on_graph;

/// Largest value the automatic width selector allows into the compact
/// (`i32`) arena. Half of `i32::MAX`: one spare bit absorbs any
/// transient the solver applies on top of a disk's peak capacity
/// (capacity retargeting rounds up, refinement pushes flow around at
/// the fixed value), so a bound that passes this check can never
/// overflow an `i32` cell mid-solve.
pub(crate) const COMPACT_CAP_LIMIT: i64 = (i32::MAX as i64) / 2;

/// Whether a per-edge capacity bound fits the compact arena under the
/// automatic selector's safety margin.
#[inline]
pub(crate) fn compact_capacity_fits(bound: i64) -> bool {
    bound <= COMPACT_CAP_LIMIT
}

/// The largest capacity any edge of `inst` can carry during a solve,
/// with the edge slot that attains it: the maximum of the instance
/// graph's static capacities and every disk's capacity at the solve's
/// upper response-time bound `t_max` (capacities are only ever set to
/// `capacity_within(t)` for probes `t <= t_max`). Flow magnitudes are
/// bounded by capacities, so this one number decides the arena width.
pub(crate) fn peak_edge_capacity(inst: &RetrievalInstance) -> (i64, usize) {
    let (_, t_max, _) = inst.budget_bounds();
    let mut bound = 0i64;
    let mut edge = 0usize;
    for e in inst.graph.forward_edges() {
        let c = inst.graph.cap(e);
        if c > bound {
            bound = c;
            edge = e;
        }
    }
    for (j, &e) in inst.disk_edges.iter().enumerate() {
        let c = inst.disks[j].capacity_within(t_max) as i64;
        if c > bound {
            bound = c;
            edge = e;
        }
    }
    (bound, edge)
}

/// Reusable buffers and engine state shared by all solvers.
#[derive(Debug)]
pub struct Workspace {
    /// Scratch copy of the instance's flow network (wide layout).
    pub(crate) graph: FlowGraph,
    /// Compact (`i32`) scratch copy, staged instead of [`Workspace::graph`]
    /// when the width selector picks [`ArenaLayout::Compact`].
    pub(crate) graph32: FlowGraph<i32>,
    /// Which of the two graphs the last [`Workspace::begin`] staged.
    pub(crate) active: ActiveWidth,
    /// The caller-requested layout policy ([`ArenaLayout::Auto`] by
    /// default).
    requested: ArenaLayout,
    /// When set, staging checks out the instance's immutable CSR
    /// topology plane (Arc-shared, copy-on-write) instead of deep-copying
    /// it — only the per-query capacity/flow plane is copied. Enabled by
    /// the fused batch path ([`SolverSpec::batch_fuse`]
    /// (crate::spec::SolverSpec::batch_fuse)); off by default so the
    /// rebuild-per-query paths keep their zero-steady-state-allocation
    /// contract without COW detaches.
    plane_sharing: bool,
    /// Shared engine-wide worker pool, injected by
    /// [`crate::engine::EngineBuilder`]; the cached parallel engine
    /// attaches to it instead of spawning its own threads.
    pool: Option<WorkerPool>,
    /// Sequential push-relabel engine (Algorithm 4) with its height,
    /// queue and excess arrays.
    pub(crate) engine: PushRelabel,
    /// Reusable DFS state for the Ford-Fulkerson solvers.
    pub(crate) search: AugmentingPath,
    /// `StoreFlows` snapshot buffer (Algorithm 6 line 31).
    pub(crate) stored_flows: Vec<i64>,
    /// Excess snapshot buffer paired with `stored_flows`.
    pub(crate) stored_excess: Vec<i64>,
    /// Cached parallel engine, keyed by its worker-thread count. Kept
    /// alive so its worker pool persists across solves.
    pub(crate) parallel: Option<(usize, ParallelPushRelabel)>,
    /// Solver-phase event tracer; disabled (single-branch emits) until a
    /// sink is installed. See [`crate::obs::trace`].
    pub(crate) tracer: Tracer,
    /// Warm flow state staged by a delta-capable caller (see
    /// [`Workspace::stage_warm`]), consumed by the next
    /// [`crate::solver::RetrievalSolver::resume_in`].
    pub(crate) warm_flows: Vec<i64>,
    /// Excess vector paired with `warm_flows`.
    pub(crate) warm_excess: Vec<i64>,
    /// Bucket slots whose identity changed since the warm flow was
    /// captured; their stale flow units are cancelled before resuming.
    pub(crate) warm_changed: Vec<usize>,
    /// Whether warm state is currently staged.
    pub(crate) warm_staged: bool,
    /// Min-cost refinement scratch (cycle canceler + cost vectors); see
    /// [`crate::refine`].
    pub(crate) refine: crate::refine::RefineScratch,
    /// Anytime budget applied to every solve run in this workspace (see
    /// [`Workspace::arm_budget`]); unlimited by default.
    budget: SolveBudget,
    /// Set while a solve is in flight; a solve that unwinds (panics) never
    /// clears it, marking the scratch state as suspect. See
    /// [`Workspace::take_poisoned`].
    poisoned: bool,
    solves: u64,
    /// Per-width high-water instance size staged so far (index 0 wide,
    /// index 1 compact). Once an instance fits both marks of its width,
    /// copying it into that scratch graph must not grow any arena
    /// buffer — [`Workspace::stage_graph`] debug-asserts it.
    hw_vertices: [usize; 2],
    hw_edge_slots: [usize; 2],
}

/// Error returned by [`Workspace::take_poisoned`] when a previous solve
/// unwound mid-flight and left the scratch state unspecified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoisonedWorkspace;

impl std::fmt::Display for PoisonedWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workspace poisoned: a previous solve panicked mid-flight; scratch state was reset"
        )
    }
}

impl std::error::Error for PoisonedWorkspace {}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace::new()
    }
}

impl Workspace {
    /// Creates an empty workspace; all buffers grow on first use.
    pub fn new() -> Workspace {
        Workspace {
            graph: FlowGraph::default(),
            graph32: FlowGraph::default(),
            active: ActiveWidth::Wide,
            requested: ArenaLayout::Auto,
            plane_sharing: false,
            pool: None,
            engine: PushRelabel::new(),
            search: AugmentingPath::new(),
            stored_flows: Vec::new(),
            stored_excess: Vec::new(),
            parallel: None,
            tracer: Tracer::disabled(),
            warm_flows: Vec::new(),
            warm_excess: Vec::new(),
            warm_changed: Vec::new(),
            warm_staged: false,
            refine: crate::refine::RefineScratch::default(),
            budget: SolveBudget::UNLIMITED,
            poisoned: false,
            solves: 0,
            hw_vertices: [0; 2],
            hw_edge_slots: [0; 2],
        }
    }

    /// Sets the arena width policy applied by every subsequent solve
    /// (`Workspace::begin`). The default is [`ArenaLayout::Auto`].
    pub fn set_arena_layout(&mut self, layout: ArenaLayout) {
        self.requested = layout;
    }

    /// Enables or disables epoch-shared topology-plane checkout for every
    /// subsequent solve (see the `plane_sharing` field). The first staged
    /// solve after enabling Arc-shares the instance's topology; further
    /// solves of the same epoch copy only cap/flow values.
    pub fn set_plane_sharing(&mut self, on: bool) {
        self.plane_sharing = on;
    }

    /// Whether plane sharing is currently enabled.
    pub fn plane_sharing(&self) -> bool {
        self.plane_sharing
    }

    /// Allocation events across both scratch arenas (wide + compact),
    /// monotone over the workspace's lifetime. Flat between two
    /// observations means every solve in between reused existing plane
    /// buffers — the steady-state contract benches pin.
    pub fn arena_allocation_events(&self) -> u64 {
        self.graph.arena().allocation_events() + self.graph32.arena().allocation_events()
    }

    /// The width the last solve actually ran in — [`ArenaLayout::Compact`]
    /// or [`ArenaLayout::Wide`], never `Auto`. Wide before the first solve.
    pub fn layout_used(&self) -> ArenaLayout {
        match self.active {
            ActiveWidth::Wide => ArenaLayout::Wide,
            ActiveWidth::Compact => ArenaLayout::Compact,
        }
    }

    /// Attaches the engine's shared [`WorkerPool`]; the cached parallel
    /// push-relabel engine then runs its discharge workers on the pool's
    /// threads (sized once at engine build) instead of spawning its own.
    pub fn set_worker_pool(&mut self, pool: WorkerPool) {
        if let Some((threads, engine)) = self.parallel.as_mut() {
            *threads = pool.threads();
            engine.set_pool(pool.clone());
        }
        self.pool = Some(pool);
    }

    /// Resolves the layout policy against one instance.
    fn select_width(&self, inst: &RetrievalInstance) -> ActiveWidth {
        match self.requested {
            ArenaLayout::Wide => ActiveWidth::Wide,
            ArenaLayout::Compact => ActiveWidth::Compact,
            _ => {
                if compact_capacity_fits(peak_edge_capacity(inst).0) {
                    ActiveWidth::Compact
                } else {
                    ActiveWidth::Wide
                }
            }
        }
    }

    /// Copies `inst`'s network into the scratch graph of the selected
    /// width. Under a forced [`ArenaLayout::Compact`] this fails with
    /// [`SolveError::ArenaOverflow`] when the instance's capacity bound
    /// (or any static capacity) exceeds the narrow width; under `Auto`
    /// the selector has already widened instead.
    ///
    /// In debug builds, asserts the steady-state contract of the CSR
    /// arena: an instance no larger than any previously staged one *of
    /// the same width* (by vertex and edge-slot count — arena buffers
    /// never shrink, so those two marks bound every buffer length) must
    /// copy in with **zero** graph allocations.
    fn stage_graph(&mut self, inst: &RetrievalInstance) -> Result<(), SolveError> {
        self.active = self.select_width(inst);
        if self.active == ActiveWidth::Compact {
            let (bound, edge) = peak_edge_capacity(inst);
            if !compact_capacity_fits(bound) {
                // Unreachable under Auto (the selector widened); a forced
                // Compact surfaces the typed error instead of wrapping.
                return Err(SolveError::ArenaOverflow {
                    edge,
                    value: bound,
                    width: "i32",
                });
            }
        }
        let wi = match self.active {
            ActiveWidth::Wide => 0,
            ActiveWidth::Compact => 1,
        };
        #[cfg(debug_assertions)]
        let (fits, events_before) = (
            inst.graph.num_vertices() <= self.hw_vertices[wi]
                && inst.graph.num_edge_slots() <= self.hw_edge_slots[wi],
            match self.active {
                ActiveWidth::Wide => self.graph.arena().allocation_events(),
                ActiveWidth::Compact => self.graph32.arena().allocation_events(),
            },
        );
        if self.plane_sharing && inst.graph.is_finalized() {
            // Epoch-shared checkout: Arc-share the instance's immutable
            // topology plane, copy only the per-query cap/flow plane. A
            // compact checkout validates every value fits `i32` before
            // writing anything, so the typed overflow below leaves the
            // scratch graph's previous plane intact.
            let shared = match self.active {
                ActiveWidth::Wide => {
                    let hit = self.graph.shares_topology_with(&inst.graph);
                    self.graph.checkout_plane_from(&inst.graph)?;
                    hit
                }
                ActiveWidth::Compact => {
                    let hit = self.graph32.shares_topology_with(&inst.graph);
                    self.graph32.checkout_plane_from(&inst.graph)?;
                    hit
                }
            };
            self.tracer.emit(TraceEvent::PlaneCheckout { shared });
        } else {
            match self.active {
                ActiveWidth::Wide => self.graph.copy_from(&inst.graph),
                ActiveWidth::Compact => self.graph32.try_copy_from(&inst.graph)?,
            }
        }
        #[cfg(debug_assertions)]
        debug_assert!(
            !fits
                || events_before
                    == match self.active {
                        ActiveWidth::Wide => self.graph.arena().allocation_events(),
                        ActiveWidth::Compact => self.graph32.arena().allocation_events(),
                    },
            "steady-state solve allocated graph memory: instance fits the \
             high-water size ({} vertices / {} edge slots) but copy_from \
             grew an arena buffer",
            self.hw_vertices[wi],
            self.hw_edge_slots[wi],
        );
        self.hw_vertices[wi] = self.hw_vertices[wi].max(inst.graph.num_vertices());
        self.hw_edge_slots[wi] = self.hw_edge_slots[wi].max(inst.graph.num_edge_slots());
        Ok(())
    }

    /// Installs a ring-buffer [`crate::obs::trace::Recorder`] with the
    /// given capacity as this workspace's trace sink; subsequent solves
    /// emit [`TraceEvent`]s into it. No-op without the `trace` feature.
    pub fn install_recorder(&mut self, capacity: usize) {
        self.tracer.install_recorder(capacity);
    }

    /// Installs an arbitrary [`TraceSink`] (e.g. a closure) as this
    /// workspace's trace sink. No-op without the `trace` feature.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.set_sink(sink);
    }

    /// Removes any installed sink, returning emits to single-branch
    /// no-ops.
    pub fn disable_tracing(&mut self) {
        self.tracer.disable();
    }

    /// The installed ring-buffer recorder, if one was installed via
    /// [`Workspace::install_recorder`] (always `None` without the `trace`
    /// feature).
    pub fn recorder(&self) -> Option<&crate::obs::trace::Recorder> {
        self.tracer.recorder()
    }

    /// Mutable access to the installed ring-buffer recorder, e.g. to
    /// `clear()` it between solves.
    pub fn recorder_mut(&mut self) -> Option<&mut crate::obs::trace::Recorder> {
        self.tracer.recorder_mut()
    }

    /// Number of solves that ran in this workspace — the amortization
    /// counter surfaced by [`crate::engine::EngineStats`].
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Sets the anytime [`SolveBudget`] applied to every subsequent solve
    /// in this workspace (until re-armed). Wall-clock limits start
    /// counting at each solve's entry, not at arming time.
    pub fn arm_budget(&mut self, budget: SolveBudget) {
        self.budget = budget;
    }

    /// The currently armed budget.
    pub fn armed_budget(&self) -> SolveBudget {
        self.budget
    }
}

/// A [`SolveBudget`] materialized at solve entry: the wall-clock limit
/// becomes an absolute deadline, the probe limit a work ceiling. Solvers
/// copy one out of the workspace before split-borrowing its parts and
/// poll [`ArmedBudget::expired`] at probe-scale boundaries.
///
/// When the budget is unlimited, `expired` never reads a clock — an
/// unbudgeted solve is bit-identical (and branch-for-branch equal) to
/// pre-budget behaviour.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArmedBudget {
    deadline: Option<Instant>,
    max_work: Option<u64>,
}

impl ArmedBudget {
    /// Arms `budget` now: wall-clock limits anchor to the current instant.
    pub(crate) fn start(budget: SolveBudget) -> ArmedBudget {
        ArmedBudget {
            deadline: budget.wall_clock.map(|d| Instant::now() + d),
            max_work: budget.max_probes,
        }
    }

    /// True when `work` probe-scale steps exhaust the budget or the
    /// wall-clock deadline has passed. The clock is read only when a
    /// deadline exists.
    #[inline]
    pub(crate) fn expired(&self, work: u64) -> bool {
        if let Some(limit) = self.max_work {
            if work >= limit {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

impl Workspace {
    /// Whether the last solve unwound without completing.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Checks and clears the poison flag. A workspace is poisoned when a
    /// solve panicked mid-flight (detected by the [`crate::engine::Engine`]
    /// shard containment, or by any caller using `catch_unwind`): the
    /// scratch graph and engine state are then unspecified. `Err` reports
    /// the condition; in both cases the workspace is safe to reuse
    /// afterwards, because every solve re-initializes the scratch state —
    /// only staged warm state is discarded here.
    pub fn take_poisoned(&mut self) -> Result<(), PoisonedWorkspace> {
        self.warm_staged = false;
        if std::mem::take(&mut self.poisoned) {
            Err(PoisonedWorkspace)
        } else {
            Ok(())
        }
    }

    /// Marks the completion of an orderly solve (success *or* clean
    /// error); called by every solver on its way out.
    pub(crate) fn complete(&mut self) {
        self.poisoned = false;
    }

    /// Stages warm state for the next [`crate::solver::RetrievalSolver::resume_in`]:
    /// the flow/excess snapshot captured after the previous solve of this
    /// stream, plus the bucket slots whose identity changed since then.
    pub(crate) fn stage_warm(&mut self, flows: &[i64], excess: &[i64], changed: &[usize]) {
        flows.clone_into(&mut self.warm_flows);
        excess.clone_into(&mut self.warm_excess);
        changed.clone_into(&mut self.warm_changed);
        self.warm_staged = true;
    }

    /// Discards any staged warm state (e.g. after a fallback to a cold
    /// solve).
    pub(crate) fn clear_warm_stage(&mut self) {
        self.warm_staged = false;
    }

    /// Prepares the workspace for one solve of `inst`: selects the arena
    /// width, copies the instance's network into that scratch graph
    /// (reusing its buffers) and clears the engine excess left by the
    /// previous solve. Fails only under a forced [`ArenaLayout::Compact`]
    /// on an instance that does not fit the narrow width.
    pub(crate) fn begin(&mut self, inst: &RetrievalInstance) -> Result<(), SolveError> {
        self.solves += 1;
        self.warm_staged = false;
        // Poisoned across the staging so a panic leaves the flag set; a
        // clean typed failure (e.g. `ArenaOverflow` on a stream that grew
        // past the compact bound) unsets it again — nothing was left
        // half-staged, the next begin re-initializes everything.
        self.poisoned = true;
        if let Err(e) = self.stage_graph(inst) {
            self.poisoned = false;
            return Err(e);
        }
        self.engine.reset_excess(inst.graph.num_vertices());
        self.tracer.emit(TraceEvent::SolveStart {
            query_size: inst.query_size() as u32,
        });
        Ok(())
    }

    /// Restores the staged warm flow snapshot into the active scratch
    /// graph. A compact restore is checked: a warm flow that no longer
    /// fits `i32` (the stream grew past the compact bound mid-session)
    /// fails typed instead of wrapping — under `Auto` the width selector
    /// has already widened, so this only fires under a forced Compact.
    fn restore_warm_flows(&mut self) -> Result<(), SolveError> {
        match self.active {
            ActiveWidth::Wide => {
                self.warm_flows.resize(self.graph.num_edge_slots(), 0);
                self.graph.restore_flows(&self.warm_flows);
            }
            ActiveWidth::Compact => {
                self.warm_flows.resize(self.graph32.num_edge_slots(), 0);
                self.graph32.try_restore_flows(&self.warm_flows)?;
            }
        }
        Ok(())
    }

    /// Warm counterpart of [`Workspace::begin`]: copies the (patched)
    /// instance network, then loads the staged warm flow into the scratch
    /// graph and the staged excesses into the sequential engine. Returns
    /// `Ok(false)` — leaving the workspace untouched — when no warm state
    /// is staged, and [`SolveError::ArenaOverflow`] when the stream no
    /// longer fits a forced compact arena (warm state is dropped; the
    /// caller decides whether to re-solve cold).
    pub(crate) fn begin_warm(&mut self, inst: &RetrievalInstance) -> Result<bool, SolveError> {
        if !self.warm_staged {
            return Ok(false);
        }
        self.warm_staged = false;
        self.solves += 1;
        self.poisoned = true;
        if let Err(e) = self.stage_graph(inst) {
            self.poisoned = false;
            return Err(e);
        }
        // The patch may have appended fresh replica arcs; they carry no
        // warm flow.
        if let Err(e) = self.restore_warm_flows() {
            self.poisoned = false;
            return Err(e);
        }
        self.engine.reset_excess(inst.graph.num_vertices());
        for (v, &x) in self.warm_excess.iter().enumerate() {
            if x != 0 {
                self.engine.set_excess(v, x);
            }
        }
        self.tracer.emit(TraceEvent::SolveStart {
            query_size: inst.query_size() as u32,
        });
        Ok(true)
    }

    /// Readies the cached parallel engine for a solve over `vertices`
    /// vertices with `threads` workers: (dis)connects it from the
    /// previous solve (excess zeroed, topology snapshot invalidated) and
    /// attaches the shared worker pool when one matching the thread
    /// count is installed. Callers then split-borrow
    /// [`Workspace::parallel`] next to the active graph via [`on_graph!`].
    pub(crate) fn ensure_parallel(&mut self, threads: usize, vertices: usize) {
        let rebuild = match &self.parallel {
            Some((t, _)) => *t != threads,
            None => true,
        };
        if rebuild {
            let engine = match &self.pool {
                Some(pool) if pool.threads() == threads => {
                    ParallelPushRelabel::with_pool(pool.clone())
                }
                _ => ParallelPushRelabel::new(threads),
            };
            self.parallel = Some((threads, engine));
        }
        let (_, engine) = self.parallel.as_mut().expect("parallel engine cached");
        engine.invalidate_topology();
        engine.reset_excess(vertices);
    }

    /// Warm counterpart of [`Workspace::ensure_parallel`]: like
    /// [`Workspace::begin_warm`], but the staged excesses are loaded into
    /// the cached parallel engine instead of the sequential one.
    pub(crate) fn begin_warm_parallel(
        &mut self,
        inst: &RetrievalInstance,
        threads: usize,
    ) -> Result<bool, SolveError> {
        if !self.warm_staged {
            return Ok(false);
        }
        self.warm_staged = false;
        self.solves += 1;
        self.poisoned = true;
        if let Err(e) = self
            .stage_graph(inst)
            .and_then(|()| self.restore_warm_flows())
        {
            self.poisoned = false;
            return Err(e);
        }
        self.tracer.emit(TraceEvent::SolveStart {
            query_size: inst.query_size() as u32,
        });
        self.ensure_parallel(threads, inst.graph.num_vertices());
        let (_, engine) = self.parallel.as_mut().expect("parallel engine cached");
        for (v, &x) in self.warm_excess.iter().enumerate() {
            if x != 0 {
                engine.set_excess(v, x);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;

    fn small_instance() -> RetrievalInstance {
        let system = SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
        let q = RangeQuery::new(0, 0, 2, 2);
        RetrievalInstance::build(&system, &alloc, &q.buckets(4))
    }

    #[test]
    fn begin_copies_instance_graph_and_counts() {
        let inst = small_instance();
        let mut ws = Workspace::new();
        ws.set_arena_layout(ArenaLayout::Wide);
        assert_eq!(ws.solves(), 0);
        ws.begin(&inst).unwrap();
        assert_eq!(ws.solves(), 1);
        assert_eq!(ws.layout_used(), ArenaLayout::Wide);
        assert_eq!(ws.graph.num_vertices(), inst.graph.num_vertices());
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
        // A second begin reuses the same buffers without issue.
        ws.begin(&inst).unwrap();
        assert_eq!(ws.solves(), 2);
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
    }

    #[test]
    fn auto_layout_picks_compact_for_small_instances() {
        let inst = small_instance();
        let mut ws = Workspace::new();
        ws.begin(&inst).unwrap();
        assert_eq!(ws.layout_used(), ArenaLayout::Compact);
        assert_eq!(ws.graph32.num_vertices(), inst.graph.num_vertices());
        assert_eq!(ws.graph32.num_edges(), inst.graph.num_edges());
        // The wide graph was never staged.
        assert_eq!(ws.graph.num_vertices(), 0);
    }

    #[test]
    fn width_selector_boundary() {
        assert!(compact_capacity_fits(COMPACT_CAP_LIMIT));
        assert!(!compact_capacity_fits(COMPACT_CAP_LIMIT + 1));
        assert!(!compact_capacity_fits(i32::MAX as i64));
        assert!(!compact_capacity_fits(i64::MAX));
        assert!(compact_capacity_fits(0));
    }

    #[test]
    fn peak_capacity_covers_static_caps_and_budget_bound() {
        let inst = small_instance();
        let (bound, edge) = peak_edge_capacity(&inst);
        assert!(bound >= 1, "source/bucket edges carry at least unit caps");
        assert!(edge < inst.graph.num_edge_slots());
        let (_, t_max, _) = inst.budget_bounds();
        let disk_peak = inst
            .disks
            .iter()
            .map(|d| d.capacity_within(t_max) as i64)
            .max()
            .unwrap();
        assert!(bound >= disk_peak);
    }

    #[test]
    fn steady_state_begin_performs_zero_graph_allocations() {
        let system = SystemConfig::homogeneous(CHEETAH, 6);
        let alloc = OrthogonalAllocation::new(6, Placement::SingleSite);
        let big = RangeQuery::new(0, 0, 3, 3);
        let small = RangeQuery::new(1, 1, 2, 2);
        let big_inst = RetrievalInstance::build(&system, &alloc, &big.buckets(6));
        let small_inst = RetrievalInstance::build(&system, &alloc, &small.buckets(6));
        let mut ws = Workspace::new();
        ws.set_arena_layout(ArenaLayout::Wide);
        ws.begin(&big_inst).unwrap();
        let events = ws.graph.arena().allocation_events();
        // Same-size and smaller instances must reuse the arena byte-for-byte
        // (stage_graph debug-asserts this too; the explicit check keeps the
        // contract pinned in release builds).
        for _ in 0..5 {
            ws.begin(&big_inst).unwrap();
            ws.begin(&small_inst).unwrap();
        }
        assert_eq!(
            ws.graph.arena().allocation_events(),
            events,
            "steady-state begin grew an arena buffer"
        );
        // The compact arena honours the same contract independently.
        ws.set_arena_layout(ArenaLayout::Compact);
        ws.begin(&big_inst).unwrap();
        let events32 = ws.graph32.arena().allocation_events();
        for _ in 0..5 {
            ws.begin(&big_inst).unwrap();
            ws.begin(&small_inst).unwrap();
        }
        assert_eq!(ws.graph32.arena().allocation_events(), events32);
    }

    #[test]
    fn plane_sharing_checkout_shares_topology_and_stays_allocation_free() {
        let inst = small_instance();
        let mut ws = Workspace::new();
        ws.set_arena_layout(ArenaLayout::Wide);
        assert!(!ws.plane_sharing());
        ws.set_plane_sharing(true);
        ws.begin(&inst).unwrap();
        assert!(ws.graph.shares_topology_with(&inst.graph));
        assert_eq!(ws.graph.num_edges(), inst.graph.num_edges());
        let events = ws.graph.arena().allocation_events();
        for _ in 0..6 {
            ws.begin(&inst).unwrap();
        }
        assert!(ws.graph.shares_topology_with(&inst.graph));
        assert_eq!(
            ws.graph.arena().allocation_events(),
            events,
            "steady-state plane checkout grew an arena buffer"
        );
        // The compact arena checks out the same wide plane (the plane is
        // width-free) and narrows only cap/flow.
        ws.set_arena_layout(ArenaLayout::Compact);
        ws.begin(&inst).unwrap();
        assert!(ws.graph32.shares_topology_with(&inst.graph));
        let events32 = ws.graph32.arena().allocation_events();
        for _ in 0..6 {
            ws.begin(&inst).unwrap();
        }
        assert_eq!(ws.graph32.arena().allocation_events(), events32);
    }

    #[test]
    fn plane_sharing_forced_compact_overflow_stays_typed() {
        let inst = oversized_instance();
        let mut ws = Workspace::new();
        ws.set_arena_layout(ArenaLayout::Compact);
        ws.set_plane_sharing(true);
        let err = ws.begin(&inst).unwrap_err();
        assert!(matches!(
            err,
            SolveError::ArenaOverflow { width: "i32", .. }
        ));
        assert_eq!(ws.take_poisoned(), Ok(()));
        // And a fitting instance checks out cleanly afterwards.
        ws.begin(&small_instance()).unwrap();
        assert_eq!(ws.layout_used(), ArenaLayout::Compact);
    }

    #[test]
    fn parallel_engine_is_cached_per_thread_count() {
        let mut ws = Workspace::new();
        ws.graph = FlowGraph::new(2);
        {
            ws.ensure_parallel(2, 2);
            let (_, engine) = ws.parallel.as_mut().unwrap();
            engine.set_excess(0, 7);
        }
        {
            // Same thread count: same engine, but excess was reset.
            ws.ensure_parallel(2, 2);
            let (_, engine) = ws.parallel.as_mut().unwrap();
            assert_eq!(engine.excess(0), 0);
        }
    }

    #[test]
    fn shared_pool_attaches_to_cached_engine() {
        let mut ws = Workspace::new();
        ws.ensure_parallel(3, 2);
        let pool = WorkerPool::new(3);
        ws.set_worker_pool(pool.clone());
        // A matching ensure keeps the pool-backed engine; a mismatched
        // thread count rebuilds without the pool.
        ws.ensure_parallel(3, 2);
        assert_eq!(ws.parallel.as_ref().unwrap().0, 3);
        ws.ensure_parallel(2, 2);
        assert_eq!(ws.parallel.as_ref().unwrap().0, 2);
    }

    /// An instance whose capacity bound exceeds the compact guard band: a
    /// very slow disk drives `t_max` up, and a 1µs disk converts that
    /// budget into more than `COMPACT_CAP_LIMIT` retrievable blocks.
    fn oversized_instance() -> RetrievalInstance {
        use rds_storage::specs::{DiskKind, DiskSpec};
        use rds_storage::time::Micros;
        const SLOW: DiskSpec = DiskSpec {
            producer: "test",
            model: "glacial",
            kind: DiskKind::Hdd,
            rpm: Some(1),
            access_time: Micros::from_micros(800_000_000),
        };
        const FAST: DiskSpec = DiskSpec {
            producer: "test",
            model: "instant",
            kind: DiskKind::Ssd,
            rpm: None,
            access_time: Micros::from_micros(1),
        };
        let system = SystemConfig::builder()
            .site("a")
            .disk(SLOW)
            .disk(FAST)
            .build();
        let alloc = OrthogonalAllocation::new(2, Placement::SingleSite);
        let q = RangeQuery::new(0, 0, 2, 1);
        RetrievalInstance::build(&system, &alloc, &q.buckets(2))
    }

    #[test]
    fn forced_compact_overflow_is_typed_and_does_not_poison() {
        let inst = oversized_instance();
        let (bound, _) = peak_edge_capacity(&inst);
        assert!(
            !compact_capacity_fits(bound),
            "test instance must exceed the compact bound, got {bound}"
        );
        let mut ws = Workspace::new();
        ws.set_arena_layout(ArenaLayout::Compact);
        let err = ws.begin(&inst).unwrap_err();
        assert!(
            matches!(err, SolveError::ArenaOverflow { width: "i32", .. }),
            "expected ArenaOverflow, got {err:?}"
        );
        // A clean typed failure is not a panic: the workspace must not
        // report itself poisoned, and stays fully usable.
        assert_eq!(ws.take_poisoned(), Ok(()));
        ws.begin(&small_instance()).unwrap();
        assert_eq!(ws.layout_used(), ArenaLayout::Compact);
    }

    #[test]
    fn auto_layout_widens_instead_of_overflowing() {
        let inst = oversized_instance();
        let mut ws = Workspace::new();
        ws.begin(&inst).unwrap();
        assert_eq!(ws.layout_used(), ArenaLayout::Wide);
        // And re-narrows when the next instance fits again.
        ws.begin(&small_instance()).unwrap();
        assert_eq!(ws.layout_used(), ArenaLayout::Compact);
    }

    #[test]
    fn begin_warm_overflow_drops_warm_state_cleanly() {
        let inst = oversized_instance();
        let mut ws = Workspace::new();
        ws.set_arena_layout(ArenaLayout::Compact);
        // Stage warm state as a prior solve of the stream would have.
        let flows = vec![0i64; inst.graph.num_edge_slots()];
        let excess = vec![0i64; inst.graph.num_vertices()];
        ws.stage_warm(&flows, &excess, &[]);
        let err = ws.begin_warm(&inst).unwrap_err();
        assert!(matches!(err, SolveError::ArenaOverflow { .. }));
        assert_eq!(ws.take_poisoned(), Ok(()));
        // The warm stage was consumed; a retry reports "no warm state"
        // instead of failing again.
        assert!(!ws.begin_warm(&inst).unwrap());
    }
}
