//! Multi-query sessions with initial-load feedback.
//!
//! The paper motivates the `X_j` term as load left by *previous queries*:
//! "initial loads of the disks from the previous queries can also be
//! calculated easily since it is based on how the previous queries are
//! scheduled" (§II-A). This module closes that loop: a
//! [`RetrievalSession`] tracks each disk's busy-until time, derives the
//! `X_j` of every incoming query from the schedules of the queries before
//! it, solves, and charges the resulting work back to the disks.
//!
//! Time is virtual: the caller supplies each query's arrival time
//! (monotone non-decreasing), so sessions are deterministic and
//! simulation-friendly.

use crate::network::RetrievalInstance;
use crate::schedule::RetrievalOutcome;
use crate::solver::RetrievalSolver;
use rds_decluster::allocation::ReplicaSource;
use rds_decluster::query::Bucket;
use rds_storage::model::{Disk, SystemConfig};
use rds_storage::time::Micros;

/// A stateful retrieval session over one storage system and allocation.
pub struct RetrievalSession<'a, A: ReplicaSource, S: RetrievalSolver> {
    system: &'a SystemConfig,
    alloc: &'a A,
    solver: S,
    /// Absolute time at which each disk finishes its outstanding work.
    busy_until: Vec<Micros>,
    /// Arrival time of the most recent query.
    now: Micros,
    /// Completed queries.
    served: u64,
}

/// The outcome of one session query, with absolute-time bookkeeping.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The solver outcome (relative response time, schedule, stats).
    pub outcome: RetrievalOutcome,
    /// Arrival time of the query.
    pub arrival: Micros,
    /// Absolute completion time (`arrival + response_time`).
    pub completion: Micros,
}

impl<'a, A: ReplicaSource, S: RetrievalSolver> RetrievalSession<'a, A, S> {
    /// Opens a session; all disks start idle.
    pub fn new(system: &'a SystemConfig, alloc: &'a A, solver: S) -> Self {
        RetrievalSession {
            busy_until: vec![Micros::ZERO; system.num_disks()],
            system,
            alloc,
            solver,
            now: Micros::ZERO,
            served: 0,
        }
    }

    /// Number of queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.served
    }

    /// Current virtual time (arrival of the latest query).
    pub fn now(&self) -> Micros {
        self.now
    }

    /// The initial load `X_j` disk `j` would present to a query arriving
    /// now: the remaining busy time, 0 if idle.
    pub fn current_load(&self, j: usize) -> Micros {
        self.busy_until[j].saturating_sub(self.now)
    }

    /// Submits a query arriving at `arrival` (must be ≥ the previous
    /// arrival), solves it with per-disk initial loads derived from the
    /// outstanding work, and charges the schedule back to the disks.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` precedes the previous query's arrival.
    pub fn submit(&mut self, arrival: Micros, buckets: &[Bucket]) -> SessionOutcome {
        assert!(
            arrival >= self.now,
            "query arrivals must be monotone: {arrival} < {}",
            self.now
        );
        self.now = arrival;

        // Instantiate the system with the session-derived X_j.
        let disks: Vec<Disk> = self
            .system
            .disks()
            .iter()
            .enumerate()
            .map(|(j, d)| Disk {
                initial_load: d.initial_load + self.current_load(j),
                ..*d
            })
            .collect();
        let loaded = SystemConfig::new(vec![rds_storage::model::Site {
            name: "session".to_string(),
            disks,
        }]);

        let inst = RetrievalInstance::build(&loaded, self.alloc, buckets);
        let outcome = self.solver.solve(&inst);

        // Charge each disk: it starts when idle (and reachable) and works
        // k_j * C_j; its new busy-until is exactly its completion time in
        // the solved schedule, measured from `arrival`.
        let counts = outcome.schedule.per_disk_counts(loaded.num_disks());
        for (j, &k) in counts.iter().enumerate() {
            if k > 0 {
                let completion = arrival + loaded.disk(j).completion_time(k);
                self.busy_until[j] = self.busy_until[j].max(completion);
            }
        }
        self.served += 1;
        SessionOutcome {
            completion: arrival + outcome.response_time,
            outcome,
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr::PushRelabelBinary;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::specs::CHEETAH;

    fn setup() -> (SystemConfig, OrthogonalAllocation) {
        (
            SystemConfig::homogeneous(CHEETAH, 5),
            OrthogonalAllocation::new(5, Placement::SingleSite),
        )
    }

    #[test]
    fn first_query_sees_idle_disks() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        for j in 0..5 {
            assert_eq!(session.current_load(j), Micros::ZERO);
        }
        let q = RangeQuery::new(0, 0, 1, 5);
        let out = session.submit(Micros::ZERO, &q.buckets(5));
        assert_eq!(out.outcome.flow_value, 5);
        // 5 buckets over 5 idle cheetahs: one each, 6.1ms.
        assert_eq!(out.outcome.response_time, Micros::from_tenths_ms(61));
        assert_eq!(session.queries_served(), 1);
    }

    #[test]
    fn back_to_back_queries_queue_behind_each_other() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let q = RangeQuery::new(0, 0, 1, 5);
        let first = session.submit(Micros::ZERO, &q.buckets(5));
        // Same query immediately again: every disk still busy 6.1ms, so
        // the second response is 6.1 (wait) + 6.1 (work).
        let second = session.submit(Micros::ZERO, &q.buckets(5));
        assert_eq!(
            second.outcome.response_time,
            first.outcome.response_time * 2
        );
    }

    #[test]
    fn loads_drain_over_time() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let q = RangeQuery::new(0, 0, 1, 5);
        session.submit(Micros::ZERO, &q.buckets(5));
        // Arrive after the disks are idle again: no queueing.
        let late = session.submit(Micros::from_millis(50), &q.buckets(5));
        assert_eq!(late.outcome.response_time, Micros::from_tenths_ms(61));
        for j in 0..5 {
            // busy_until = 50ms + 6.1ms.
            assert_eq!(session.current_load(j), Micros::from_tenths_ms(61));
        }
    }

    #[test]
    fn partial_overlap_steers_to_idle_disks() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        // Load only the disk serving bucket (0,1), via a 1-bucket query.
        // (Column 0 buckets have identical copies under the single-site
        // lattice pair, so use column 1 where the replicas differ.)
        let single = RangeQuery::new(0, 1, 1, 1);
        let first = session.submit(Micros::ZERO, &single.buckets(5));
        let (_, loaded_disk) = first.outcome.schedule.assignments()[0];
        assert!(session.current_load(loaded_disk) > Micros::ZERO);

        // The same bucket again: the optimal schedule should use the
        // *other* replica (idle) rather than queue behind the first.
        let second = session.submit(Micros::ZERO, &single.buckets(5));
        let (_, second_disk) = second.outcome.schedule.assignments()[0];
        assert_ne!(second_disk, loaded_disk);
        assert_eq!(second.outcome.response_time, Micros::from_tenths_ms(61));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_travel_rejected() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let q = RangeQuery::new(0, 0, 1, 1);
        session.submit(Micros::from_millis(10), &q.buckets(5));
        session.submit(Micros::from_millis(5), &q.buckets(5));
    }

    #[test]
    fn completion_is_arrival_plus_response() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let q = RangeQuery::new(1, 1, 2, 2);
        let arrival = Micros::from_millis(7);
        let out = session.submit(arrival, &q.buckets(5));
        assert_eq!(out.completion, arrival + out.outcome.response_time);
        assert_eq!(out.arrival, arrival);
    }
}
