//! Multi-query sessions with initial-load feedback.
//!
//! The paper motivates the `X_j` term as load left by *previous queries*:
//! "initial loads of the disks from the previous queries can also be
//! calculated easily since it is based on how the previous queries are
//! scheduled" (§II-A). This module closes that loop: a
//! [`RetrievalSession`] tracks each disk's busy-until time, derives the
//! `X_j` of every incoming query from the schedules of the queries before
//! it, solves, and charges the resulting work back to the disks.
//!
//! Time is virtual: the caller supplies each query's arrival time
//! (monotone non-decreasing), so sessions are deterministic and
//! simulation-friendly.
//!
//! Internally the session keeps one cached [`RetrievalInstance`] and one
//! [`Workspace`]. Each submit patches the cached instance in place — only
//! the per-disk initial loads when the bucket set repeats, a full
//! [`RetrievalInstance::rebuild_in`] otherwise — so steady-state submits
//! allocate nothing. The bookkeeping lives in [`SessionState`], a plain
//! owned value, so the batch [`crate::engine::Engine`] can hold many
//! sessions and move them across worker threads.

use crate::error::{SessionError, SolveError};
use crate::fault::{self, HealthMap};
use crate::network::RetrievalInstance;
use crate::obs::span::PhaseKind;
use crate::obs::trace::TraceEvent;
use crate::schedule::{RetrievalOutcome, SolveStats};
use crate::solver::RetrievalSolver;
use crate::spec::ScheduleObjective;
use crate::workspace::{on_graph, Workspace};
use rds_decluster::allocation::ReplicaSource;
use rds_decluster::query::Bucket;
use rds_storage::model::SystemConfig;
use rds_storage::time::Micros;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Cross-query reuse knobs for one stream: warm-start delta solving and
/// the per-stream schedule cache. The default disables both — sessions
/// then behave exactly as before this feature existed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReusePolicy {
    /// Patch the previous query's flow to the next query (cancel stale
    /// units, retarget capacities) instead of solving from scratch, when
    /// the consecutive queries are compatible (same query size, same
    /// health). Solvers without delta support transparently fall back to
    /// a full rebuild per query.
    pub warm_start: bool,
    /// Entries in the per-stream schedule cache keyed by (query, health,
    /// load) fingerprints; `0` disables the cache.
    pub cache_capacity: usize,
}

impl ReusePolicy {
    /// The recommended reuse preset: warm start on, an 8-entry cache.
    pub fn warm() -> ReusePolicy {
        ReusePolicy {
            warm_start: true,
            cache_capacity: 8,
        }
    }

    /// Whether any reuse mechanism is on.
    pub fn enabled(&self) -> bool {
        self.warm_start || self.cache_capacity > 0
    }
}

/// Effectiveness counters for one stream's reuse machinery, surfaced
/// aggregated by [`crate::engine::EngineStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReuseCounters {
    /// Submits answered straight from the schedule cache.
    pub cache_hits: u64,
    /// Submits that consulted the cache and missed.
    pub cache_misses: u64,
    /// Cache entries displaced by capacity pressure.
    pub cache_evictions: u64,
    /// Submits solved by delta-patching the previous flow.
    pub delta_patches: u64,
    /// Delta attempts the solver declined ([`SolveError::DeltaUnsupported`]),
    /// transparently re-solved from scratch.
    pub delta_fallbacks: u64,
}

impl ReuseCounters {
    /// Adds `other` into `self` (engine aggregation across streams).
    pub fn merge(&mut self, other: &ReuseCounters) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.delta_patches += other.delta_patches;
        self.delta_fallbacks += other.delta_fallbacks;
    }
}

/// Flow/excess snapshot of a stream's previous solve, staged into the
/// workspace for `resume_in`.
#[derive(Clone, Debug, Default)]
struct WarmFlow {
    flows: Vec<i64>,
    excess: Vec<i64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CacheKey {
    query_fp: u64,
    health_fp: u64,
    load_fp: u64,
}

/// Tiny LRU of recent solve outcomes. Linear scan — capacities are
/// single-digit, so a map would cost more than it saves.
#[derive(Clone, Debug, Default)]
struct ScheduleCache {
    entries: Vec<(CacheKey, RetrievalOutcome)>,
}

impl ScheduleCache {
    /// Looks up `key`, refreshing its LRU position on a hit.
    fn get(&mut self, key: &CacheKey) -> Option<RetrievalOutcome> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let outcome = entry.1.clone();
        self.entries.push(entry);
        Some(outcome)
    }

    fn insert(
        &mut self,
        key: CacheKey,
        outcome: RetrievalOutcome,
        capacity: usize,
        evictions: &mut u64,
    ) {
        if capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let _ = self.entries.remove(pos);
        } else if self.entries.len() >= capacity {
            let _ = self.entries.remove(0);
            *evictions += 1;
        }
        self.entries.push((key, outcome));
    }
}

fn hash_of(value: &impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// The outcome of one session query, with absolute-time bookkeeping.
#[must_use]
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The solver outcome (relative response time, schedule, stats). On a
    /// degraded submit this covers the servable subset only.
    pub outcome: RetrievalOutcome,
    /// Arrival time of the query.
    pub arrival: Micros,
    /// Absolute completion time (`arrival + response_time`).
    pub completion: Micros,
    /// Buckets dropped because every replica was offline. Always empty
    /// outside [`SessionState::submit_degraded_with`].
    pub unservable: Vec<Bucket>,
}

impl SessionOutcome {
    /// True when every requested bucket was retrieved.
    pub fn is_complete(&self) -> bool {
        self.unservable.is_empty()
    }
}

/// The owned, thread-movable bookkeeping of one query stream: disk
/// busy-until times, virtual clock, and the cached retrieval instance.
///
/// [`RetrievalSession`] wraps one of these with its system/allocation
/// references for the common single-stream case;
/// [`crate::engine::Engine`] keeps one per stream and drives them with
/// [`SessionState::submit_with`] on whichever shard owns the stream.
#[derive(Clone, Debug, Default)]
pub struct SessionState {
    /// Absolute time at which each disk finishes its outstanding work.
    busy_until: Vec<Micros>,
    /// Arrival time of the most recent query.
    now: Micros,
    /// Completed queries.
    served: u64,
    /// Instance reused (patched or rebuilt in place) across submits.
    instance: Option<RetrievalInstance>,
    /// Fingerprint of the [`HealthMap`] the cached instance was built
    /// under — topology reuse requires it to match, since offline disks
    /// change which replica edges exist.
    health_fp: u64,
    /// Fingerprint of the health this stream last *observed*, for
    /// [`crate::obs::trace::TraceEvent::HealthTransition`] emission by the
    /// engine. Tracked per stream (not per shard) so transition counts
    /// are independent of how streams are sharded.
    pub(crate) observed_health_fp: u64,
    /// Scratch: buckets with a live replica (degraded submits).
    servable_buf: Vec<Bucket>,
    /// Scratch: buckets with no live replica (degraded submits).
    unservable_buf: Vec<Bucket>,
    /// Cross-query reuse knobs (default: all off).
    reuse: ReusePolicy,
    /// Which response-time-optimal schedule to return (default: the
    /// first feasible one, no refinement).
    objective: ScheduleObjective,
    /// Reuse effectiveness counters.
    counters: ReuseCounters,
    /// Flow snapshot of the previous solve, if still loadable into the
    /// cached instance (invalidated by any rebuild).
    warm: Option<WarmFlow>,
    /// Recent solve outcomes keyed by (query, health, load) fingerprints.
    cache: ScheduleCache,
    /// Scratch: slots patched by the last `patch_buckets`.
    changed_scratch: Vec<usize>,
}

impl SessionState {
    /// Fresh state: all disks idle, clock at zero.
    pub fn new(num_disks: usize) -> SessionState {
        SessionState {
            busy_until: vec![Micros::ZERO; num_disks],
            now: Micros::ZERO,
            served: 0,
            instance: None,
            health_fp: HealthMap::HEALTHY_FINGERPRINT,
            observed_health_fp: HealthMap::HEALTHY_FINGERPRINT,
            servable_buf: Vec::new(),
            unservable_buf: Vec::new(),
            reuse: ReusePolicy::default(),
            objective: ScheduleObjective::default(),
            counters: ReuseCounters::default(),
            warm: None,
            cache: ScheduleCache::default(),
            changed_scratch: Vec::new(),
        }
    }

    /// Fresh state with cross-query reuse configured.
    pub fn with_reuse(num_disks: usize, reuse: ReusePolicy) -> SessionState {
        let mut state = SessionState::new(num_disks);
        state.reuse = reuse;
        state
    }

    /// Replaces the reuse policy. Disabling warm start also drops any
    /// captured flow snapshot.
    pub fn set_reuse_policy(&mut self, reuse: ReusePolicy) {
        self.reuse = reuse;
        if !reuse.warm_start {
            self.warm = None;
        }
        if reuse.cache_capacity == 0 {
            self.cache.entries.clear();
        }
    }

    /// The active reuse policy.
    pub fn reuse_policy(&self) -> ReusePolicy {
        self.reuse
    }

    /// Replaces the schedule objective. Changing it drops cached
    /// schedules (they were refined under the old objective); the warm
    /// flow snapshot stays valid — any feasible flow can seed the next
    /// delta solve, and refinement runs after every solve anyway.
    pub fn set_objective(&mut self, objective: ScheduleObjective) {
        if self.objective != objective {
            self.cache.entries.clear();
        }
        self.objective = objective;
    }

    /// The active schedule objective.
    pub fn objective(&self) -> ScheduleObjective {
        self.objective
    }

    /// Reuse effectiveness counters accumulated so far.
    pub fn reuse_counters(&self) -> ReuseCounters {
        self.counters
    }

    /// Number of queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.served
    }

    /// Current virtual time (arrival of the latest query).
    pub fn now(&self) -> Micros {
        self.now
    }

    /// The initial load `X_j` disk `j` would present to a query arriving
    /// now: the remaining busy time, 0 if idle.
    pub fn current_load(&self, j: usize) -> Micros {
        self.busy_until[j].saturating_sub(self.now)
    }

    /// Submits a query arriving at `arrival` (must be ≥ the previous
    /// arrival), solves it with per-disk initial loads derived from the
    /// outstanding work, and charges the schedule back to the disks.
    ///
    /// `system` and `alloc` must be the same on every call for the load
    /// feedback to be meaningful (the [`RetrievalSession`] wrapper
    /// guarantees this).
    pub fn submit_with<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
        &mut self,
        system: &SystemConfig,
        alloc: &A,
        solver: &S,
        ws: &mut Workspace,
        arrival: Micros,
        buckets: &[Bucket],
    ) -> Result<SessionOutcome, SessionError> {
        self.submit_faulted(
            system,
            alloc,
            solver,
            ws,
            arrival,
            buckets,
            &HealthMap::all_healthy(),
            false,
        )
    }

    /// Like [`SessionState::submit_with`], but plans around the faults in
    /// `health`: offline disks are pruned from the network and degraded
    /// disks carry inflated cost and load. **Strict**: if any requested
    /// bucket has every replica offline, fails with
    /// [`SolveError::Infeasible`] naming that bucket, and no disk is
    /// charged.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_with_health<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
        &mut self,
        system: &SystemConfig,
        alloc: &A,
        solver: &S,
        ws: &mut Workspace,
        arrival: Micros,
        buckets: &[Bucket],
        health: &HealthMap,
    ) -> Result<SessionOutcome, SessionError> {
        self.submit_faulted(system, alloc, solver, ws, arrival, buckets, health, false)
    }

    /// Best-effort variant of [`SessionState::submit_with_health`]:
    /// buckets whose replicas are all offline are dropped into
    /// [`SessionOutcome::unservable`] and the remainder is scheduled
    /// optimally, instead of failing the whole query.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_degraded_with<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
        &mut self,
        system: &SystemConfig,
        alloc: &A,
        solver: &S,
        ws: &mut Workspace,
        arrival: Micros,
        buckets: &[Bucket],
        health: &HealthMap,
    ) -> Result<SessionOutcome, SessionError> {
        self.submit_faulted(system, alloc, solver, ws, arrival, buckets, health, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_faulted<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
        &mut self,
        system: &SystemConfig,
        alloc: &A,
        solver: &S,
        ws: &mut Workspace,
        arrival: Micros,
        buckets: &[Bucket],
        health: &HealthMap,
        best_effort: bool,
    ) -> Result<SessionOutcome, SessionError> {
        if arrival < self.now {
            return Err(SessionError::NonMonotoneArrival {
                arrival,
                now: self.now,
            });
        }
        self.now = arrival;

        // Partition out buckets that lost every replica. With no offline
        // disks this is skipped entirely — the healthy path copies
        // nothing.
        let target: &[Bucket] = if health.any_offline() {
            fault::partition_by_health(
                alloc,
                buckets,
                health,
                &mut self.servable_buf,
                &mut self.unservable_buf,
            );
            if !self.unservable_buf.is_empty() && !best_effort {
                return Err(SessionError::Solve(SolveError::Infeasible {
                    bucket: Some(self.unservable_buf[0]),
                    delivered: self.servable_buf.len() as i64,
                    required: buckets.len() as i64,
                }));
            }
            &self.servable_buf
        } else {
            self.unservable_buf.clear();
            buckets
        };

        let fp = health.fingerprint();

        // Schedule cache: the outcome is fully determined by the target
        // buckets, the health map and the effective per-disk loads, all
        // hashable without touching the cached instance. A hit skips the
        // instance patching and the solve, but still charges the disks.
        let cache_key = (self.reuse.cache_capacity > 0).then(|| CacheKey {
            query_fp: hash_of(&target),
            health_fp: fp,
            load_fp: {
                let mut h = DefaultHasher::new();
                for (j, busy) in self.busy_until.iter().enumerate() {
                    let base = health.apply(j, system.disk(j));
                    (base.initial_load + busy.saturating_sub(arrival)).hash(&mut h);
                }
                h.finish()
            },
        });
        if let Some(key) = cache_key {
            if let Some(outcome) = self.cache.get(&key) {
                self.counters.cache_hits += 1;
                ws.tracer.emit(TraceEvent::CacheHit {
                    fingerprint: key.query_fp,
                });
                return Ok(self.charge(system, health, arrival, outcome, ws));
            }
            self.counters.cache_misses += 1;
        }

        // Bring the cached instance up to date. Three paths, cheapest
        // first: the bucket set repeats under the same health (topology
        // already right, only loads changed); the previous flow is warm
        // and the new query is patch-compatible (delta surgery on the
        // live network); otherwise rebuild the topology in place.
        let topo_ok = self.health_fp == fp
            && self
                .instance
                .as_ref()
                .is_some_and(|inst| inst.num_disks() == system.num_disks());
        let same_buckets = topo_ok
            && self
                .instance
                .as_ref()
                .is_some_and(|inst| inst.buckets == target);
        let mut delta_ready = false;
        if self.reuse.warm_start && self.warm.is_some() && topo_ok {
            if same_buckets {
                self.changed_scratch.clear();
                delta_ready = true;
            } else if self
                .instance
                .as_ref()
                .is_some_and(|i| i.query_size() == target.len() && !i.needs_compaction())
            {
                let inst = self.instance.as_mut().expect("topo_ok");
                match inst.patch_buckets(alloc, target, health, &mut self.changed_scratch) {
                    Ok(()) => delta_ready = true,
                    Err(_) => {
                        // A new bucket lost every replica mid-patch; the
                        // instance is unspecified. Fall through to a full
                        // rebuild, which reports the infeasibility.
                        ws.tracer.span_mark(PhaseKind::DeltaFallback, 0, 0);
                        self.instance = None;
                        self.warm = None;
                    }
                }
            }
        }
        if !same_buckets && !delta_ready {
            ws.tracer
                .span_mark(PhaseKind::Rebuild, target.len() as u64, 0);
            let rebuilt = match self.instance.as_mut() {
                Some(inst) => inst.rebuild_with_health(system, alloc, target, health),
                None => RetrievalInstance::build_with_health(system, alloc, target, health)
                    .map(|inst| self.instance = Some(inst)),
            };
            // `partition_by_health` already removed every dead bucket, so
            // a rebuild can only fail if a bucket has no replica at all —
            // surface that as infeasibility rather than panicking.
            if let Err(u) = rebuilt {
                self.instance = None;
                self.warm = None;
                return Err(SessionError::Solve(SolveError::Infeasible {
                    bucket: Some(u.bucket),
                    delivered: 0,
                    required: buckets.len() as i64,
                }));
            }
            self.health_fp = fp;
            // Edge ids changed under the rebuild; the captured flow no
            // longer maps onto the graph.
            self.warm = None;
        }
        let inst = self.instance.as_mut().expect("instance cached above");
        // Degraded disks present their inflated configured load; the busy
        // backlog from earlier queries is added unscaled (it is already
        // measured in wall time).
        for (j, d) in inst.disks.iter_mut().enumerate() {
            let base = health.apply(j, system.disk(j));
            d.initial_load = base.initial_load + self.busy_until[j].saturating_sub(arrival);
        }

        let solved = if delta_ready {
            let warm = self.warm.as_ref().expect("delta_ready implies warm");
            ws.stage_warm(&warm.flows, &warm.excess, &self.changed_scratch);
            match solver.resume_in(inst, ws) {
                Ok(outcome) => {
                    self.counters.delta_patches += 1;
                    Ok(outcome)
                }
                Err(SolveError::DeltaUnsupported { .. }) => {
                    // The declared fallback: the patched instance is a
                    // valid cold instance (dead arcs carry zero capacity),
                    // so re-solve it from scratch.
                    self.counters.delta_fallbacks += 1;
                    ws.tracer.span_mark(PhaseKind::DeltaFallback, 1, 0);
                    solver.solve_in(inst, ws)
                }
                Err(e) => Err(e),
            }
        } else {
            solver.solve_in(inst, ws)
        };
        let mut outcome = match solved {
            Ok(outcome) => outcome,
            Err(e) => {
                // The workspace graph no longer matches any captured flow.
                self.warm = None;
                return Err(e.into());
            }
        };

        // Refine before the warm capture and the cache insert, so the
        // flow snapshot seeding the next delta solve and any replayed
        // cache entry both carry the refined, load-balanced flow.
        if let Err(e) = crate::refine::refine_in(self.objective, inst, ws, &mut outcome) {
            self.warm = None;
            return Err(e.into());
        }

        if self.reuse.warm_start {
            // Capture the completed flow for the next submit. Every
            // solver leaves its final flow in the workspace graph; the
            // excess of a complete flow is zero everywhere but the sink.
            let warm = self.warm.get_or_insert_with(WarmFlow::default);
            // The snapshot is width-erased (`Vec<i64>`), so it survives the
            // workspace switching arena widths between submits.
            let vertices = on_graph!(ws, |g| {
                g.store_flows_into(&mut warm.flows);
                g.num_vertices()
            });
            warm.excess.clear();
            warm.excess.resize(vertices, 0);
            warm.excess[inst.sink()] = outcome.flow_value as i64;
        }
        if let Some(key) = cache_key {
            // Stats are zeroed so a hit is byte-identical no matter how
            // often the entry is replayed.
            let mut cached = outcome.clone();
            cached.stats = SolveStats::default();
            self.cache.insert(
                key,
                cached,
                self.reuse.cache_capacity,
                &mut self.counters.cache_evictions,
            );
        }
        Ok(self.charge(system, health, arrival, outcome, ws))
    }

    /// Charges a solved (or cache-replayed) outcome back to the disks and
    /// wraps it with absolute-time bookkeeping. The effective disk
    /// parameters are recomputed from the system and health so the cache
    /// hit path needs no instance.
    fn charge(
        &mut self,
        system: &SystemConfig,
        health: &HealthMap,
        arrival: Micros,
        outcome: RetrievalOutcome,
        ws: &mut Workspace,
    ) -> SessionOutcome {
        let counts = outcome.schedule.per_disk_counts(self.busy_until.len());
        for (j, &k) in counts.iter().enumerate() {
            if k > 0 {
                let mut disk = health.apply(j, system.disk(j));
                disk.initial_load += self.busy_until[j].saturating_sub(arrival);
                let completion = arrival + disk.completion_time(k);
                self.busy_until[j] = self.busy_until[j].max(completion);
            }
        }
        self.served += 1;
        if !self.unservable_buf.is_empty() {
            ws.tracer.emit(TraceEvent::DegradedServe {
                served: outcome.schedule.len() as u32,
                dropped: self.unservable_buf.len() as u32,
            });
        }
        SessionOutcome {
            completion: arrival + outcome.response_time,
            outcome,
            arrival,
            unservable: self.unservable_buf.clone(),
        }
    }
}

/// A stateful retrieval session over one storage system and allocation.
pub struct RetrievalSession<'a, A: ReplicaSource, S: RetrievalSolver> {
    system: &'a SystemConfig,
    alloc: &'a A,
    solver: S,
    state: SessionState,
    workspace: Workspace,
}

impl<'a, A: ReplicaSource, S: RetrievalSolver> RetrievalSession<'a, A, S> {
    /// Opens a session; all disks start idle.
    pub fn new(system: &'a SystemConfig, alloc: &'a A, solver: S) -> Self {
        RetrievalSession {
            state: SessionState::new(system.num_disks()),
            workspace: Workspace::new(),
            system,
            alloc,
            solver,
        }
    }

    /// Opens a session with cross-query reuse configured: warm-start
    /// delta solving and/or a per-stream schedule cache.
    ///
    /// ```
    /// use rds_core::pr::PushRelabelBinary;
    /// use rds_core::session::{ReusePolicy, RetrievalSession};
    /// use rds_decluster::orthogonal::OrthogonalAllocation;
    /// use rds_decluster::query::{Query, RangeQuery};
    /// use rds_storage::experiments::paper_example;
    /// use rds_storage::time::Micros;
    ///
    /// let system = paper_example();
    /// let alloc = OrthogonalAllocation::paper_7x7();
    /// let mut session =
    ///     RetrievalSession::with_reuse(&system, &alloc, PushRelabelBinary, ReusePolicy::warm());
    /// // Two overlapping range queries of equal size: the second is
    /// // delta-solved by patching the first one's flow.
    /// let q1 = RangeQuery::new(0, 0, 2, 3).buckets(7);
    /// let q2 = RangeQuery::new(0, 1, 2, 3).buckets(7);
    /// session.submit(Micros::ZERO, &q1).unwrap();
    /// session.submit(Micros::from_millis(50), &q2).unwrap();
    /// assert_eq!(session.reuse_counters().delta_patches, 1);
    /// ```
    pub fn with_reuse(
        system: &'a SystemConfig,
        alloc: &'a A,
        solver: S,
        reuse: ReusePolicy,
    ) -> Self {
        RetrievalSession {
            state: SessionState::with_reuse(system.num_disks(), reuse),
            workspace: Workspace::new(),
            system,
            alloc,
            solver,
        }
    }

    /// Sets the schedule objective for subsequent submits: refined
    /// schedules keep the optimal response time but balance per-disk
    /// load. Chainable at construction time.
    ///
    /// ```
    /// use rds_core::pr::PushRelabelBinary;
    /// use rds_core::session::RetrievalSession;
    /// use rds_core::spec::ScheduleObjective;
    /// use rds_decluster::orthogonal::OrthogonalAllocation;
    /// use rds_storage::experiments::paper_example;
    ///
    /// let system = paper_example();
    /// let alloc = OrthogonalAllocation::paper_7x7();
    /// let session = RetrievalSession::new(&system, &alloc, PushRelabelBinary)
    ///     .objective(ScheduleObjective::MinTotalLoad);
    /// ```
    pub fn objective(mut self, objective: ScheduleObjective) -> Self {
        self.state.set_objective(objective);
        self
    }

    /// Sets the anytime [`SolveBudget`](crate::spec::SolveBudget) armed
    /// for every subsequent submit. An expired budget finalizes the solve
    /// at the best feasible bound found so far instead of running to the
    /// exact optimum — the gap is reported in
    /// [`SolveStats::anytime_gap`](crate::schedule::SolveStats::anytime_gap).
    /// Chainable at construction time; defaults to unlimited.
    pub fn budget(mut self, budget: crate::spec::SolveBudget) -> Self {
        self.workspace.arm_budget(budget);
        self
    }

    /// Replaces the armed solve budget mid-session.
    pub fn set_budget(&mut self, budget: crate::spec::SolveBudget) {
        self.workspace.arm_budget(budget);
    }

    /// Forces the residual arena's index width for every subsequent
    /// submit. The default, [`ArenaLayout::Auto`](crate::spec::ArenaLayout),
    /// picks the compact `i32` arena whenever the instance's peak edge
    /// capacity fits and transparently widens when it does not.
    /// Chainable at construction time.
    pub fn arena_layout(mut self, layout: crate::spec::ArenaLayout) -> Self {
        self.workspace.set_arena_layout(layout);
        self
    }

    /// Reuse effectiveness counters accumulated so far.
    pub fn reuse_counters(&self) -> ReuseCounters {
        self.state.reuse_counters()
    }

    /// Number of queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.state.queries_served()
    }

    /// Current virtual time (arrival of the latest query).
    pub fn now(&self) -> Micros {
        self.state.now()
    }

    /// The initial load `X_j` disk `j` would present to a query arriving
    /// now: the remaining busy time, 0 if idle.
    pub fn current_load(&self, j: usize) -> Micros {
        self.state.current_load(j)
    }

    /// Submits a query arriving at `arrival` (must be ≥ the previous
    /// arrival), solves it with per-disk initial loads derived from the
    /// outstanding work, and charges the schedule back to the disks.
    ///
    /// Returns [`SessionError::NonMonotoneArrival`] if `arrival` precedes
    /// the previous query's arrival, and [`SessionError::Solve`] if the
    /// solver rejects the instance; neither poisons the session.
    pub fn submit(
        &mut self,
        arrival: Micros,
        buckets: &[Bucket],
    ) -> Result<SessionOutcome, SessionError> {
        self.state.submit_with(
            self.system,
            self.alloc,
            &self.solver,
            &mut self.workspace,
            arrival,
            buckets,
        )
    }

    /// Strict fault-aware submit: plans around `health` (offline replicas
    /// pruned, degraded disks slowed) and fails with
    /// [`SolveError::Infeasible`] if any bucket lost every replica. See
    /// [`SessionState::submit_with_health`].
    pub fn submit_with_health(
        &mut self,
        arrival: Micros,
        buckets: &[Bucket],
        health: &HealthMap,
    ) -> Result<SessionOutcome, SessionError> {
        self.state.submit_with_health(
            self.system,
            self.alloc,
            &self.solver,
            &mut self.workspace,
            arrival,
            buckets,
            health,
        )
    }

    /// Best-effort fault-aware submit: unservable buckets are reported in
    /// [`SessionOutcome::unservable`] instead of failing the query. See
    /// [`SessionState::submit_degraded_with`].
    pub fn submit_degraded(
        &mut self,
        arrival: Micros,
        buckets: &[Bucket],
        health: &HealthMap,
    ) -> Result<SessionOutcome, SessionError> {
        self.state.submit_degraded_with(
            self.system,
            self.alloc,
            &self.solver,
            &mut self.workspace,
            arrival,
            buckets,
            health,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SolveError;
    use crate::ff::FordFulkersonBasic;
    use crate::pr::PushRelabelBinary;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::specs::CHEETAH;

    fn setup() -> (SystemConfig, OrthogonalAllocation) {
        (
            SystemConfig::homogeneous(CHEETAH, 5),
            OrthogonalAllocation::new(5, Placement::SingleSite),
        )
    }

    #[test]
    fn delta_patch_past_compact_bound_fails_typed_with_clean_workspace() {
        use crate::spec::ArenaLayout;
        use crate::workspace::Workspace;

        let (system, alloc) = setup();
        let mut state = SessionState::with_reuse(5, ReusePolicy::warm());
        let mut ws = Workspace::new();
        ws.set_arena_layout(ArenaLayout::Compact);
        let q1 = RangeQuery::new(0, 0, 2, 3).buckets(5);
        // Same query size, different buckets: the next submit takes the
        // patch_buckets delta path, not a rebuild.
        let q2 = RangeQuery::new(0, 1, 2, 3).buckets(5);
        let _ = state
            .submit_with(
                &system,
                &alloc,
                &PushRelabelBinary,
                &mut ws,
                Micros::ZERO,
                &q1,
            )
            .unwrap();
        assert_eq!(ws.layout_used(), ArenaLayout::Compact);
        assert!(state.warm.is_some(), "warm flow captured");

        // A backlog pile-up on one disk drives the next solve's t_max sky
        // high, and an idle disk converts that budget into more blocks
        // than the compact guard band admits: the patched, warm-started
        // solve must fail with the typed overflow, not wrap or panic.
        state.busy_until[0] = Micros::from_micros(20_000_000_000_000);
        let err = state
            .submit_with(
                &system,
                &alloc,
                &PushRelabelBinary,
                &mut ws,
                Micros::ZERO,
                &q2,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                SessionError::Solve(SolveError::ArenaOverflow { width: "i32", .. })
            ),
            "expected typed ArenaOverflow, got {err:?}"
        );
        // Typed failure, not poison: the workspace reports clean.
        assert_eq!(ws.take_poisoned(), Ok(()));
        // The stale warm snapshot was dropped with the failed solve.
        assert!(state.warm.is_none(), "warm flow dropped on overflow");

        // Widening recovers the stream in place, overload and all.
        ws.set_arena_layout(ArenaLayout::Wide);
        let out = state
            .submit_with(
                &system,
                &alloc,
                &PushRelabelBinary,
                &mut ws,
                Micros::ZERO,
                &q2,
            )
            .unwrap();
        assert_eq!(ws.layout_used(), ArenaLayout::Wide);
        assert_eq!(out.outcome.flow_value, q2.len() as u64);
    }

    #[test]
    fn first_query_sees_idle_disks() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        for j in 0..5 {
            assert_eq!(session.current_load(j), Micros::ZERO);
        }
        let q = RangeQuery::new(0, 0, 1, 5);
        let out = session.submit(Micros::ZERO, &q.buckets(5)).unwrap();
        assert_eq!(out.outcome.flow_value, 5);
        // 5 buckets over 5 idle cheetahs: one each, 6.1ms.
        assert_eq!(out.outcome.response_time, Micros::from_tenths_ms(61));
        assert_eq!(session.queries_served(), 1);
    }

    #[test]
    fn back_to_back_queries_queue_behind_each_other() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let q = RangeQuery::new(0, 0, 1, 5);
        let first = session.submit(Micros::ZERO, &q.buckets(5)).unwrap();
        // Same query immediately again: every disk still busy 6.1ms, so
        // the second response is 6.1 (wait) + 6.1 (work).
        let second = session.submit(Micros::ZERO, &q.buckets(5)).unwrap();
        assert_eq!(
            second.outcome.response_time,
            first.outcome.response_time * 2
        );
    }

    #[test]
    fn loads_drain_over_time() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let q = RangeQuery::new(0, 0, 1, 5);
        let _ = session.submit(Micros::ZERO, &q.buckets(5)).unwrap();
        // Arrive after the disks are idle again: no queueing.
        let late = session
            .submit(Micros::from_millis(50), &q.buckets(5))
            .unwrap();
        assert_eq!(late.outcome.response_time, Micros::from_tenths_ms(61));
        for j in 0..5 {
            // busy_until = 50ms + 6.1ms.
            assert_eq!(session.current_load(j), Micros::from_tenths_ms(61));
        }
    }

    #[test]
    fn partial_overlap_steers_to_idle_disks() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        // Load only the disk serving bucket (0,1), via a 1-bucket query.
        // (Column 0 buckets have identical copies under the single-site
        // lattice pair, so use column 1 where the replicas differ.)
        let single = RangeQuery::new(0, 1, 1, 1);
        let first = session.submit(Micros::ZERO, &single.buckets(5)).unwrap();
        let (_, loaded_disk) = first.outcome.schedule.assignments()[0];
        assert!(session.current_load(loaded_disk) > Micros::ZERO);

        // The same bucket again: the optimal schedule should use the
        // *other* replica (idle) rather than queue behind the first.
        let second = session.submit(Micros::ZERO, &single.buckets(5)).unwrap();
        let (_, second_disk) = second.outcome.schedule.assignments()[0];
        assert_ne!(second_disk, loaded_disk);
        assert_eq!(second.outcome.response_time, Micros::from_tenths_ms(61));
    }

    #[test]
    fn time_travel_rejected_without_poisoning() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let q = RangeQuery::new(0, 0, 1, 1);
        let _ = session
            .submit(Micros::from_millis(10), &q.buckets(5))
            .unwrap();
        let err = session
            .submit(Micros::from_millis(5), &q.buckets(5))
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::NonMonotoneArrival {
                arrival: Micros::from_millis(5),
                now: Micros::from_millis(10),
            }
        );
        // The failed submit left the session usable.
        assert_eq!(session.queries_served(), 1);
        let ok = session.submit(Micros::from_millis(10), &q.buckets(5));
        assert!(ok.is_ok());
    }

    #[test]
    fn solver_rejection_surfaces_as_session_error() {
        // FF-basic refuses loaded disks, so the *second* submit of a
        // session (disks now loaded) must fail with UnsupportedSystem —
        // through the Result, not a panic.
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, FordFulkersonBasic);
        let q = RangeQuery::new(0, 0, 1, 5);
        let _ = session.submit(Micros::ZERO, &q.buckets(5)).unwrap();
        let err = session.submit(Micros::ZERO, &q.buckets(5)).unwrap_err();
        assert!(matches!(
            err,
            SessionError::Solve(SolveError::UnsupportedSystem { .. })
        ));
        assert_eq!(session.queries_served(), 1);
    }

    #[test]
    fn completion_is_arrival_plus_response() {
        let (system, alloc) = setup();
        let mut session = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let q = RangeQuery::new(1, 1, 2, 2);
        let arrival = Micros::from_millis(7);
        let out = session.submit(arrival, &q.buckets(5)).unwrap();
        assert_eq!(out.completion, arrival + out.outcome.response_time);
        assert_eq!(out.arrival, arrival);
    }

    #[test]
    fn repeated_bucket_set_reuses_cached_topology() {
        // Alternate two bucket sets; results must match a fresh session
        // fed the same sequence (exercises both the load-patch fast path
        // and the rebuild path).
        let (system, alloc) = setup();
        let qa = RangeQuery::new(0, 0, 1, 5).buckets(5);
        let qb = RangeQuery::new(1, 0, 2, 2).buckets(5);
        let mut cached = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let mut t = Micros::ZERO;
        let mut results = Vec::new();
        for i in 0..8 {
            let b = if i % 3 == 0 { &qb } else { &qa };
            results.push(cached.submit(t, b).unwrap().outcome.response_time);
            t += Micros::from_millis(2);
        }
        // Replay into a brand-new session.
        let mut fresh = RetrievalSession::new(&system, &alloc, PushRelabelBinary);
        let mut t = Micros::ZERO;
        for (i, want) in results.iter().enumerate() {
            let b = if i % 3 == 0 { &qb } else { &qa };
            let got = fresh.submit(t, b).unwrap().outcome.response_time;
            assert_eq!(got, *want, "query {i}");
            t += Micros::from_millis(2);
        }
    }
}
