//! Push-relabel based integrated retrieval (paper Algorithms 5 and 6).
//!
//! * [`PushRelabelIncremental`] — Algorithm 5 run standalone from zero
//!   capacities: alternate `IncrementMinCost` with a flow-conserving
//!   push-relabel resume until the sink receives `|Q|` units.
//! * [`PushRelabelBinary`] — Algorithm 6: first a binary search over the
//!   response-time budget narrows `[t_min, t_max)` below the fastest
//!   disk's per-bucket cost, **conserving flows across probes** (storing
//!   the flow state of failed probes, restoring it after successful ones);
//!   then the incremental phase of Algorithm 5 finds the exact optimum.
//!
//! The `binary_scaling_integrated` driver is generic over any
//! [`IncrementalMaxFlow`] engine, so the sequential and the parallel
//! (Section V) solvers share one implementation.

use crate::error::SolveError;
use crate::increment::MinCostIncrementer;
use crate::network::RetrievalInstance;
use crate::obs::trace::{TraceEvent, Tracer};
use crate::schedule::{RetrievalOutcome, SolveStats};
use crate::solver::RetrievalSolver;
use crate::workspace::{on_graph, ArmedBudget, Workspace};
use rds_flow::graph::{ArenaIndex, FlowGraph};
use rds_flow::incremental::{cancel_path, retarget_capacity, IncrementalMaxFlow};
use rds_storage::time::Micros;

/// Algorithm 5 standalone: integrated incremental push-relabel from zero
/// capacities.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushRelabelIncremental;

impl RetrievalSolver for PushRelabelIncremental {
    fn name(&self) -> &'static str {
        "PR-incremental"
    }

    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), false);
        let budget = ArmedBudget::start(ws.armed_budget());
        ws.begin(inst)?;
        let mut stats = SolveStats::default();
        let result = on_graph!(ws, |g| {
            match incremental_phase(
                &mut ws.engine,
                inst,
                g,
                &mut stats,
                &mut ws.tracer,
                budget,
                None,
            ) {
                Ok(bailed) => outcome_with_budget(inst, g, stats, bailed, &mut ws.tracer),
                Err(e) => Err(e),
            }
        });
        ws.complete();
        result
    }

    fn supports_delta(&self) -> bool {
        true
    }

    fn resume_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), true);
        let budget = ArmedBudget::start(ws.armed_budget());
        if !ws.begin_warm(inst)? {
            return Err(SolveError::DeltaUnsupported {
                solver: self.name(),
            });
        }
        let mut stats = SolveStats::default();
        let result = on_graph!(ws, |g| {
            match warm_integrated(
                &mut ws.engine,
                inst,
                g,
                &mut stats,
                &mut ws.stored_excess,
                &ws.warm_changed,
                &mut ws.tracer,
                false,
                budget,
            ) {
                Ok(bailed) => outcome_with_budget(inst, g, stats, bailed, &mut ws.tracer),
                Err(e) => Err(e),
            }
        });
        ws.complete();
        result
    }
}

/// Algorithm 6: binary capacity scaling with flow conservation — the
/// paper's headline sequential algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushRelabelBinary;

impl RetrievalSolver for PushRelabelBinary {
    fn name(&self) -> &'static str {
        "PR-binary"
    }

    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), false);
        let budget = ArmedBudget::start(ws.armed_budget());
        ws.begin(inst)?;
        let mut stats = SolveStats::default();
        let result = on_graph!(ws, |g| {
            match binary_scaling_integrated(
                &mut ws.engine,
                inst,
                g,
                &mut stats,
                &mut ws.stored_flows,
                &mut ws.stored_excess,
                &mut ws.tracer,
                budget,
            ) {
                Ok(bailed) => outcome_with_budget(inst, g, stats, bailed, &mut ws.tracer),
                Err(e) => Err(e),
            }
        });
        ws.complete();
        result
    }

    fn supports_delta(&self) -> bool {
        true
    }

    fn resume_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), true);
        let budget = ArmedBudget::start(ws.armed_budget());
        if !ws.begin_warm(inst)? {
            return Err(SolveError::DeltaUnsupported {
                solver: self.name(),
            });
        }
        let mut stats = SolveStats::default();
        let result = on_graph!(ws, |g| {
            match warm_integrated(
                &mut ws.engine,
                inst,
                g,
                &mut stats,
                &mut ws.stored_excess,
                &ws.warm_changed,
                &mut ws.tracer,
                true,
                budget,
            ) {
                Ok(bailed) => outcome_with_budget(inst, g, stats, bailed, &mut ws.tracer),
                Err(e) => Err(e),
            }
        });
        ws.complete();
        result
    }
}

/// Attaches the anytime bookkeeping to a finished solve: when the driver
/// bailed out on an expired budget (`bailed = Some(lower_bound)`), the
/// gap between the achieved response time and that lower bound lands in
/// [`SolveStats`] and a [`TraceEvent::BudgetExpired`] is emitted. The
/// flow must retrieve every bucket in both cases — budget bail-outs
/// finalize at a known-feasible budget, never with a partial flow.
pub(crate) fn outcome_with_budget<W: ArenaIndex>(
    inst: &RetrievalInstance,
    g: &FlowGraph<W>,
    stats: SolveStats,
    bailed: Option<Micros>,
    tracer: &mut Tracer,
) -> Result<RetrievalOutcome, SolveError> {
    let mut outcome = RetrievalOutcome::try_from_flow(inst, g, stats)?;
    if let Some(lower) = bailed {
        outcome.stats.budget_expirations = 1;
        outcome.stats.anytime_gap = outcome.response_time.saturating_sub(lower);
        tracer.emit(TraceEvent::BudgetExpired {
            achieved: outcome.response_time,
            lower_bound: lower,
        });
    }
    Ok(outcome)
}

/// Probe-scale work performed so far — the deterministic step count an
/// [`ArmedBudget`] probe limit is checked against. Binary-search probes,
/// capacity increments and augmenting-path searches all count equally.
#[inline]
pub(crate) fn budget_work(stats: &SolveStats) -> u64 {
    stats.probes + stats.increments + stats.dfs_calls
}

/// The incremental phase (Algorithm 5): alternate `IncrementMinCost` and a
/// flow-conserving resume until the sink's excess reaches `|Q|`.
///
/// Anytime mode: when `budget` expires mid-phase, the disk capacities are
/// raised straight to the feasible upper bound `t_max` (from `bounds`, or
/// freshly tightened greedy bounds when the caller had none) and one final
/// resume completes the flow there. Capacities only ever *rise* on this
/// path — the incremental caps never exceed `capacity_within(t*)` and
/// `t* ≤ t_max` — so the live preflow stays valid. Returns
/// `Ok(Some(lower_bound))` for such a bail-out, `Ok(None)` for a run to
/// the exact optimum.
pub(crate) fn incremental_phase<W: ArenaIndex, E: IncrementalMaxFlow<W>>(
    engine: &mut E,
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    stats: &mut SolveStats,
    tracer: &mut Tracer,
    budget: ArmedBudget,
    bounds: Option<(Micros, Micros)>,
) -> Result<Option<Micros>, SolveError> {
    let q = inst.query_size() as i64;
    if q == 0 {
        return Ok(None);
    }
    let (s, t) = (inst.source(), inst.sink());
    let mut inc = MinCostIncrementer::new(inst);
    // The capacities may already admit the full flow (e.g. after the
    // binary phase lands exactly on the optimum's predecessor); probe once
    // before incrementing only if flow is already recorded.
    while engine.excess(t) != q {
        if budget.expired(budget_work(stats)) {
            let (t_lo, t_hi) = bounds.unwrap_or_else(|| {
                let (lo, hi, _) = inst.tightened_bounds(&mut Vec::new());
                (lo, hi)
            });
            inst.set_caps_for_budget(g, t_hi);
            let flow = resume_traced(engine, g, s, t, stats, tracer);
            if flow != q {
                return Err(SolveError::Infeasible {
                    bucket: None,
                    delivered: flow,
                    required: q,
                });
            }
            return Ok(Some(t_lo));
        }
        let raised = inc.increment(inst, g);
        stats.increments += 1;
        tracer.emit(TraceEvent::CapacityIncrement {
            edges: raised as u32,
        });
        if raised == 0 {
            return Err(SolveError::Infeasible {
                bucket: None,
                delivered: engine.excess(t),
                required: q,
            });
        }
        resume_traced(engine, g, s, t, stats, tracer);
    }
    Ok(None)
}

/// One flow-conserving resume with its push/relabel work attributed: the
/// engine's cumulative operation counters are differenced around the call,
/// folded into `stats`, and emitted as a [`TraceEvent::RelabelPass`].
fn resume_traced<W: ArenaIndex, E: IncrementalMaxFlow<W>>(
    engine: &mut E,
    g: &mut FlowGraph<W>,
    s: rds_flow::graph::VertexId,
    t: rds_flow::graph::VertexId,
    stats: &mut SolveStats,
    tracer: &mut Tracer,
) -> i64 {
    let (pushes_before, relabels_before) = engine.op_counts();
    let flow = engine.resume(g, s, t);
    stats.resume_calls += 1;
    let (pushes, relabels) = engine.op_counts();
    let (pushes, relabels) = (pushes - pushes_before, relabels - relabels_before);
    stats.pushes += pushes;
    stats.relabels += relabels;
    tracer.emit(TraceEvent::RelabelPass { pushes, relabels });
    flow
}

/// The full Algorithm 6 driver, generic over the max-flow engine. The
/// `stored_flows`/`stored_excess` buffers hold the `StoreFlows` rollback
/// state; passing them in (from a [`Workspace`]) makes the per-probe
/// snapshots allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn binary_scaling_integrated<W: ArenaIndex, E: IncrementalMaxFlow<W>>(
    engine: &mut E,
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    stats: &mut SolveStats,
    stored_flows: &mut Vec<i64>,
    stored_excess: &mut Vec<i64>,
    tracer: &mut Tracer,
    budget: ArmedBudget,
) -> Result<Option<Micros>, SolveError> {
    let q = inst.query_size() as i64;
    if q == 0 {
        return Ok(None);
    }
    let (s, t) = (inst.source(), inst.sink());
    let n = g.num_vertices();
    // `stored_excess` doubles as the greedy counter scratch here; it is
    // (re)initialized as the excess snapshot right below.
    let (mut t_min, mut t_max, min_speed) = inst.tightened_bounds(stored_excess);

    // `StoreFlows` state: flow and excess of the most recent *failed*
    // probe (a preflow that stays feasible for every budget above its
    // probe point). Initially the zero state.
    g.store_flows_into(stored_flows);
    stored_excess.clear();
    stored_excess.resize(n, 0);

    while t_max - t_min >= min_speed {
        // Anytime bail-out. At the loop top the live flow equals the last
        // failed-probe snapshot, whose per-edge flow never exceeds
        // `capacity_within(t_max)` (failed probes sit strictly below
        // `t_max`), so raising the caps to the known-feasible `t_max` and
        // resuming once completes the flow there.
        if budget.expired(budget_work(stats)) {
            inst.set_caps_for_budget(g, t_max);
            let flow = resume_traced(engine, g, s, t, stats, tracer);
            if flow != q {
                return Err(SolveError::Infeasible {
                    bucket: None,
                    delivered: flow,
                    required: q,
                });
            }
            return Ok(Some(t_min));
        }
        let t_mid = t_min.midpoint(t_max);
        inst.set_caps_for_budget(g, t_mid);
        tracer.emit(TraceEvent::ProbeStart { budget: t_mid });
        let flow = resume_traced(engine, g, s, t, stats, tracer);
        stats.probes += 1;
        tracer.emit(TraceEvent::ProbeEnd {
            budget: t_mid,
            feasible: flow == q,
        });
        if flow != q {
            // No solution at t_mid (lines 30-33): keep the state we just
            // computed — it stays feasible for all larger budgets.
            g.store_flows_into(stored_flows);
            engine.excess_snapshot_into(n, stored_excess);
            t_min = t_mid;
        } else {
            // Solution found but possibly not optimal (lines 34-37):
            // shrink from above and roll back to the last failed state so
            // the smaller capacities of future probes are respected.
            g.restore_flows(stored_flows);
            engine.restore_excess(stored_excess);
            t_max = t_mid;
        }
    }

    // Lines 38-42: roll back, fix capacities at t_min, finish with the
    // incremental phase.
    g.restore_flows(stored_flows);
    engine.restore_excess(stored_excess);
    inst.set_caps_for_budget(g, t_min);
    incremental_phase(engine, inst, g, stats, tracer, budget, Some((t_min, t_max)))
}

/// Cancels the warm flow unit of every bucket slot whose identity changed
/// in the patch. Each stale unit still rides a `source → bucket → disk →
/// sink` path whose replica arc the patch capped to zero; unwinding the
/// path through the residual graph returns the unit's excess from the sink
/// to the source, where the resume re-routes it through the slot's new
/// replica arcs. Returns the number of units cancelled.
fn cancel_stale_units<W: ArenaIndex, E: IncrementalMaxFlow<W>>(
    engine: &mut E,
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    changed: &[usize],
) -> u32 {
    let mut cancelled = 0;
    for &i in changed {
        let sb = inst.bucket_edges[i];
        if g.flow(sb) <= 0 {
            continue;
        }
        let b = inst.bucket_vertex(i);
        let mut path = None;
        for k in 0..g.out_edges(b).len() {
            let e = g.out_edges(b)[k] as usize;
            if e.is_multiple_of(2) && g.flow(e) > 0 {
                let j = inst.disk_of_vertex(g.target(e));
                path = Some([sb, e, inst.disk_edges[j]]);
                break;
            }
        }
        if let Some(p) = path {
            cancel_path(engine, g, &p, 1);
            cancelled += 1;
        }
    }
    cancelled
}

/// Retargets every disk-edge capacity to budget `t`, draining any flow the
/// smaller capacities orphan into disk-vertex excess (the warm equivalent
/// of [`RetrievalInstance::set_caps_for_budget`], which assumes the caller
/// will discard or roll back the flow).
fn retarget_caps<W: ArenaIndex, E: IncrementalMaxFlow<W>>(
    engine: &mut E,
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    t: Micros,
) {
    for (j, &e) in inst.disk_edges.iter().enumerate() {
        retarget_capacity(engine, g, e, inst.disks[j].capacity_within(t) as i64);
    }
}

/// Algorithm 6 re-run from a warm, delta-patched flow instead of from
/// zero. Where the cold driver conserves flow across probes with
/// `StoreFlows`/`RestoreFlows` snapshots, the warm driver never snapshots:
/// each probe *retargets* the disk capacities in place, draining orphaned
/// flow into disk excess that the next resume re-routes. Push-relabel
/// correctness needs only a valid preflow, so the surgery is safe for any
/// flow-conserving engine. With `binary` false this is the warm Algorithm
/// 5: skip the probes and run the incremental phase from the
/// min-cost-prefix capacities at `t_min`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn warm_integrated<W: ArenaIndex, E: IncrementalMaxFlow<W>>(
    engine: &mut E,
    inst: &RetrievalInstance,
    g: &mut FlowGraph<W>,
    stats: &mut SolveStats,
    scratch: &mut Vec<i64>,
    changed: &[usize],
    tracer: &mut Tracer,
    binary: bool,
    budget: ArmedBudget,
) -> Result<Option<Micros>, SolveError> {
    let cancelled = cancel_stale_units(engine, inst, g, changed);
    tracer.emit(TraceEvent::DeltaPatch {
        changed: changed.len() as u32,
        cancelled,
    });
    let q = inst.query_size() as i64;
    if q == 0 {
        return Ok(None);
    }
    let (s, t) = (inst.source(), inst.sink());
    let (mut t_min, mut t_max, min_speed) = inst.tightened_bounds(scratch);
    if binary {
        while t_max - t_min >= min_speed {
            // Anytime bail-out: retarget straight to the known-feasible
            // upper bound (the retarget drains any flow a lower previous
            // probe cap orphans) and resume once to complete the flow.
            if budget.expired(budget_work(stats)) {
                retarget_caps(engine, inst, g, t_max);
                let flow = resume_traced(engine, g, s, t, stats, tracer);
                if flow != q {
                    return Err(SolveError::Infeasible {
                        bucket: None,
                        delivered: flow,
                        required: q,
                    });
                }
                return Ok(Some(t_min));
            }
            let t_mid = t_min.midpoint(t_max);
            retarget_caps(engine, inst, g, t_mid);
            tracer.emit(TraceEvent::ProbeStart { budget: t_mid });
            let flow = resume_traced(engine, g, s, t, stats, tracer);
            stats.probes += 1;
            tracer.emit(TraceEvent::ProbeEnd {
                budget: t_mid,
                feasible: flow == q,
            });
            if flow != q {
                t_min = t_mid;
            } else {
                t_max = t_mid;
            }
        }
    }
    // Land on the min-cost-prefix capacities at t_min (infeasible or
    // trivially low) and let the incremental phase find the exact optimum,
    // exactly as the cold driver does after its final rollback.
    retarget_caps(engine, inst, g, t_min);
    incremental_phase(engine, inst, g, stats, tracer, budget, Some((t_min, t_max)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ff::FordFulkersonIncremental;
    use crate::verify::{assert_outcome_valid, oracle_optimal_response};
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::periodic::DependentPeriodicAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_decluster::rda::RandomDuplicateAllocation;
    use rds_storage::experiments::{experiment, paper_example, ExperimentId};
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;
    use rds_storage::time::Micros;

    #[test]
    fn binary_solves_paper_q1_basic() {
        let system = SystemConfig::homogeneous(CHEETAH, 7);
        let alloc = OrthogonalAllocation::new(7, Placement::SingleSite);
        let q1 = RangeQuery::new(0, 0, 3, 2);
        let inst = RetrievalInstance::build(&system, &alloc, &q1.buckets(7));
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 6);
        assert_eq!(outcome.response_time, Micros::from_tenths_ms(61));
        assert_outcome_valid(&inst, &outcome);
    }

    #[test]
    fn incremental_and_binary_agree_on_paper_example() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        for (r, c) in [(3usize, 2usize), (7, 7), (1, 1), (4, 6)] {
            let q = RangeQuery::new(1, 2, r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
            let a = PushRelabelIncremental.solve(&inst).unwrap();
            let b = PushRelabelBinary.solve(&inst).unwrap();
            assert_eq!(a.response_time, b.response_time, "query {r}x{c}");
            assert_outcome_valid(&inst, &a);
            assert_outcome_valid(&inst, &b);
            assert_eq!(b.response_time, oracle_optimal_response(&inst));
        }
    }

    #[test]
    fn binary_uses_fewer_increments_than_incremental() {
        // The whole point of the binary phase: capacity values are brought
        // near the optimum in O(log |Q|) probes instead of O(c|Q|)
        // single-step increments.
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(0, 0, 7, 7);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let a = PushRelabelIncremental.solve(&inst).unwrap();
        let b = PushRelabelBinary.solve(&inst).unwrap();
        assert!(
            b.stats.increments < a.stats.increments,
            "binary {} vs incremental {}",
            b.stats.increments,
            a.stats.increments
        );
    }

    #[test]
    fn agrees_with_ford_fulkerson_across_experiments() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(17);
        for id in ExperimentId::ALL {
            let n = rng.gen_range(4..9);
            let system = experiment(id, n, rng.gen_u64());
            let alloc = RandomDuplicateAllocation::two_site(n, rng.gen_u64());
            let r = rng.gen_range(1..=n);
            let c = rng.gen_range(1..=n);
            let q = RangeQuery::new(rng.gen_range(0..n), rng.gen_range(0..n), r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
            let ff = FordFulkersonIncremental.solve(&inst).unwrap();
            let pr = PushRelabelBinary.solve(&inst).unwrap();
            assert_eq!(
                ff.response_time, pr.response_time,
                "experiment {:?} n={n}",
                id
            );
            assert_outcome_valid(&inst, &pr);
        }
    }

    #[test]
    fn optimal_on_random_exp5_instances() {
        use rds_util::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(23);
        for case in 0..8 {
            let n = rng.gen_range(3..8);
            let system = experiment(ExperimentId::Exp5, n, rng.gen_u64());
            let alloc = DependentPeriodicAllocation::new(n, Placement::PerSite);
            let r = rng.gen_range(1..=n);
            let c = rng.gen_range(1..=n);
            let q = RangeQuery::new(rng.gen_range(0..n), rng.gen_range(0..n), r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
            let outcome = PushRelabelBinary.solve(&inst).unwrap();
            assert_outcome_valid(&inst, &outcome);
            assert_eq!(
                outcome.response_time,
                oracle_optimal_response(&inst),
                "case {case} n={n}"
            );
        }
    }

    #[test]
    fn empty_query() {
        let system = SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 0);
        assert_eq!(outcome.response_time, Micros::ZERO);
    }

    #[test]
    fn single_bucket_query_picks_fastest_replica() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(0, 0, 1, 1);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 1);
        // The best replica is whichever of the two copies has the lower
        // single-bucket completion time; both candidates are 11.3ms
        // (site 1 raptor) or 7.1/14.2ms (site 2).
        let (b, d) = outcome.schedule.assignments()[0];
        assert_eq!(b, rds_decluster::query::Bucket::new(0, 0));
        assert_eq!(outcome.response_time, inst.disks[d].completion_time(1));
        assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        // One workspace threaded through differently-shaped queries and
        // both algorithms must reproduce the fresh-workspace results.
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let mut ws = Workspace::new();
        for (r, c) in [(7usize, 7usize), (1, 1), (3, 2), (5, 4)] {
            let q = RangeQuery::new(0, 0, r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
            let reused = PushRelabelBinary.solve_in(&inst, &mut ws).unwrap();
            let fresh = PushRelabelBinary.solve(&inst).unwrap();
            assert_eq!(reused.response_time, fresh.response_time, "{r}x{c}");
            let reused = PushRelabelIncremental.solve_in(&inst, &mut ws).unwrap();
            assert_eq!(reused.response_time, fresh.response_time, "{r}x{c}");
        }
        assert_eq!(ws.solves(), 8);
    }

    #[test]
    fn probes_scale_logarithmically() {
        let system = experiment(ExperimentId::Exp5, 10, 3);
        let alloc = OrthogonalAllocation::new(10, Placement::PerSite);
        let q = RangeQuery::new(0, 0, 10, 10);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(10));
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        // The budget range spans ~|Q| * C_max / min_speed values; probes
        // are its base-2 log — generously under 64.
        assert!(outcome.stats.probes < 64, "{} probes", outcome.stats.probes);
        assert_outcome_valid(&inst, &outcome);
    }
}
