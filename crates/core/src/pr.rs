//! Push-relabel based integrated retrieval (paper Algorithms 5 and 6).
//!
//! * [`PushRelabelIncremental`] — Algorithm 5 run standalone from zero
//!   capacities: alternate `IncrementMinCost` with a flow-conserving
//!   push-relabel resume until the sink receives `|Q|` units.
//! * [`PushRelabelBinary`] — Algorithm 6: first a binary search over the
//!   response-time budget narrows `[t_min, t_max)` below the fastest
//!   disk's per-bucket cost, **conserving flows across probes** (storing
//!   the flow state of failed probes, restoring it after successful ones);
//!   then the incremental phase of Algorithm 5 finds the exact optimum.
//!
//! The `binary_scaling_integrated` driver is generic over any
//! [`IncrementalMaxFlow`] engine, so the sequential and the parallel
//! (Section V) solvers share one implementation.

use crate::increment::MinCostIncrementer;
use crate::network::RetrievalInstance;
use crate::schedule::{RetrievalOutcome, SolveStats};
use crate::solver::RetrievalSolver;
use rds_flow::graph::FlowGraph;
use rds_flow::incremental::IncrementalMaxFlow;
use rds_flow::push_relabel::PushRelabel;

/// Algorithm 5 standalone: integrated incremental push-relabel from zero
/// capacities.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushRelabelIncremental;

impl RetrievalSolver for PushRelabelIncremental {
    fn name(&self) -> &'static str {
        "PR-incremental"
    }

    fn solve(&self, inst: &RetrievalInstance) -> RetrievalOutcome {
        let mut g = inst.graph.clone();
        let mut stats = SolveStats::default();
        let mut engine = PushRelabel::new();
        incremental_phase(&mut engine, inst, &mut g, &mut stats);
        RetrievalOutcome::from_flow(inst, &g, stats)
    }
}

/// Algorithm 6: binary capacity scaling with flow conservation — the
/// paper's headline sequential algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushRelabelBinary;

impl RetrievalSolver for PushRelabelBinary {
    fn name(&self) -> &'static str {
        "PR-binary"
    }

    fn solve(&self, inst: &RetrievalInstance) -> RetrievalOutcome {
        let mut g = inst.graph.clone();
        let mut stats = SolveStats::default();
        let mut engine = PushRelabel::new();
        binary_scaling_integrated(&mut engine, inst, &mut g, &mut stats);
        RetrievalOutcome::from_flow(inst, &g, stats)
    }
}

/// The incremental phase (Algorithm 5): alternate `IncrementMinCost` and a
/// flow-conserving resume until the sink's excess reaches `|Q|`.
pub(crate) fn incremental_phase<E: IncrementalMaxFlow>(
    engine: &mut E,
    inst: &RetrievalInstance,
    g: &mut FlowGraph,
    stats: &mut SolveStats,
) {
    let q = inst.query_size() as i64;
    if q == 0 {
        return;
    }
    let (s, t) = (inst.source(), inst.sink());
    let mut inc = MinCostIncrementer::new(inst);
    // The capacities may already admit the full flow (e.g. after the
    // binary phase lands exactly on the optimum's predecessor); probe once
    // before incrementing only if flow is already recorded.
    while engine.excess(t) != q {
        let raised = inc.increment(inst, g);
        stats.increments += 1;
        assert!(raised > 0, "retrieval instance is infeasible");
        engine.resume(g, s, t);
        stats.resume_calls += 1;
    }
}

/// The full Algorithm 6 driver, generic over the max-flow engine.
pub(crate) fn binary_scaling_integrated<E: IncrementalMaxFlow>(
    engine: &mut E,
    inst: &RetrievalInstance,
    g: &mut FlowGraph,
    stats: &mut SolveStats,
) {
    let q = inst.query_size() as i64;
    if q == 0 {
        return;
    }
    let (s, t) = (inst.source(), inst.sink());
    let n = g.num_vertices();
    let (mut t_min, mut t_max, min_speed) = inst.budget_bounds();

    // `StoreFlows` state: flow and excess of the most recent *failed*
    // probe (a preflow that stays feasible for every budget above its
    // probe point). Initially the zero state.
    let mut stored_flows = g.store_flows();
    let mut stored_excess = vec![0i64; n];

    while t_max - t_min >= min_speed {
        let t_mid = t_min.midpoint(t_max);
        inst.set_caps_for_budget(g, t_mid);
        let flow = engine.resume(g, s, t);
        stats.probes += 1;
        stats.resume_calls += 1;
        if flow != q {
            // No solution at t_mid (lines 30-33): keep the state we just
            // computed — it stays feasible for all larger budgets.
            stored_flows = g.store_flows();
            stored_excess = engine.excess_snapshot(n);
            t_min = t_mid;
        } else {
            // Solution found but possibly not optimal (lines 34-37):
            // shrink from above and roll back to the last failed state so
            // the smaller capacities of future probes are respected.
            g.restore_flows(&stored_flows);
            engine.restore_excess(&stored_excess);
            t_max = t_mid;
        }
    }

    // Lines 38-42: roll back, fix capacities at t_min, finish with the
    // incremental phase.
    g.restore_flows(&stored_flows);
    engine.restore_excess(&stored_excess);
    inst.set_caps_for_budget(g, t_min);
    incremental_phase(engine, inst, g, stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ff::FordFulkersonIncremental;
    use crate::verify::{assert_outcome_valid, oracle_optimal_response};
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::periodic::DependentPeriodicAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_decluster::rda::RandomDuplicateAllocation;
    use rds_storage::experiments::{experiment, paper_example, ExperimentId};
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;
    use rds_storage::time::Micros;

    #[test]
    fn binary_solves_paper_q1_basic() {
        let system = SystemConfig::homogeneous(CHEETAH, 7);
        let alloc = OrthogonalAllocation::new(7, Placement::SingleSite);
        let q1 = RangeQuery::new(0, 0, 3, 2);
        let inst = RetrievalInstance::build(&system, &alloc, &q1.buckets(7));
        let outcome = PushRelabelBinary.solve(&inst);
        assert_eq!(outcome.flow_value, 6);
        assert_eq!(outcome.response_time, Micros::from_tenths_ms(61));
        assert_outcome_valid(&inst, &outcome);
    }

    #[test]
    fn incremental_and_binary_agree_on_paper_example() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        for (r, c) in [(3usize, 2usize), (7, 7), (1, 1), (4, 6)] {
            let q = RangeQuery::new(1, 2, r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
            let a = PushRelabelIncremental.solve(&inst);
            let b = PushRelabelBinary.solve(&inst);
            assert_eq!(a.response_time, b.response_time, "query {r}x{c}");
            assert_outcome_valid(&inst, &a);
            assert_outcome_valid(&inst, &b);
            assert_eq!(b.response_time, oracle_optimal_response(&inst));
        }
    }

    #[test]
    fn binary_uses_fewer_increments_than_incremental() {
        // The whole point of the binary phase: capacity values are brought
        // near the optimum in O(log |Q|) probes instead of O(c|Q|)
        // single-step increments.
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(0, 0, 7, 7);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let a = PushRelabelIncremental.solve(&inst);
        let b = PushRelabelBinary.solve(&inst);
        assert!(
            b.stats.increments < a.stats.increments,
            "binary {} vs incremental {}",
            b.stats.increments,
            a.stats.increments
        );
    }

    #[test]
    fn agrees_with_ford_fulkerson_across_experiments() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for id in ExperimentId::ALL {
            let n = rng.gen_range(4..9);
            let system = experiment(id, n, rng.gen());
            let alloc = RandomDuplicateAllocation::two_site(n, rng.gen());
            let r = rng.gen_range(1..=n);
            let c = rng.gen_range(1..=n);
            let q = RangeQuery::new(rng.gen_range(0..n), rng.gen_range(0..n), r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
            let ff = FordFulkersonIncremental.solve(&inst);
            let pr = PushRelabelBinary.solve(&inst);
            assert_eq!(
                ff.response_time, pr.response_time,
                "experiment {:?} n={n}",
                id
            );
            assert_outcome_valid(&inst, &pr);
        }
    }

    #[test]
    fn optimal_on_random_exp5_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for case in 0..8 {
            let n = rng.gen_range(3..8);
            let system = experiment(ExperimentId::Exp5, n, rng.gen());
            let alloc = DependentPeriodicAllocation::new(n, Placement::PerSite);
            let r = rng.gen_range(1..=n);
            let c = rng.gen_range(1..=n);
            let q = RangeQuery::new(rng.gen_range(0..n), rng.gen_range(0..n), r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(n));
            let outcome = PushRelabelBinary.solve(&inst);
            assert_outcome_valid(&inst, &outcome);
            assert_eq!(
                outcome.response_time,
                oracle_optimal_response(&inst),
                "case {case} n={n}"
            );
        }
    }

    #[test]
    fn empty_query() {
        let system = SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, Placement::SingleSite);
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        let outcome = PushRelabelBinary.solve(&inst);
        assert_eq!(outcome.flow_value, 0);
        assert_eq!(outcome.response_time, Micros::ZERO);
    }

    #[test]
    fn single_bucket_query_picks_fastest_replica() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(0, 0, 1, 1);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let outcome = PushRelabelBinary.solve(&inst);
        assert_eq!(outcome.flow_value, 1);
        // The best replica is whichever of the two copies has the lower
        // single-bucket completion time; both candidates are 11.3ms
        // (site 1 raptor) or 7.1/14.2ms (site 2).
        let (b, d) = outcome.schedule.assignments()[0];
        assert_eq!(b, rds_decluster::query::Bucket::new(0, 0));
        assert_eq!(outcome.response_time, inst.disks[d].completion_time(1));
        assert_eq!(outcome.response_time, oracle_optimal_response(&inst));
    }

    #[test]
    fn probes_scale_logarithmically() {
        let system = experiment(ExperimentId::Exp5, 10, 3);
        let alloc = OrthogonalAllocation::new(10, Placement::PerSite);
        let q = RangeQuery::new(0, 0, 10, 10);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(10));
        let outcome = PushRelabelBinary.solve(&inst);
        // The budget range spans ~|Q| * C_max / min_speed values; probes
        // are its base-2 log — generously under 64.
        assert!(outcome.stats.probes < 64, "{} probes", outcome.stats.probes);
        assert_outcome_valid(&inst, &outcome);
    }
}
