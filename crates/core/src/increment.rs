//! `IncrementMinCost` — the paper's Algorithm 3.
//!
//! In the generalized problem the disk-edge capacities cannot all be
//! incremented together: each disk has a different cost of serving one
//! more bucket. The increment step therefore raises the capacity of the
//! edge(s) whose *next completion time* `D_j + X_j + (cap_j + 1) · C_j`
//! is minimal — scanning candidate response times in increasing order, so
//! the first capacity vector admitting a full flow is optimal.
//!
//! A disk whose capacity already covers every query bucket it stores
//! (`in_degree(disk) ≤ cap`) is removed from consideration (Algorithm 3,
//! lines 3-5), bounding the total number of increment steps by
//! `O(c · |Q|)`.

use crate::network::RetrievalInstance;
use rds_flow::graph::{ArenaIndex, FlowGraph};
use rds_storage::time::Micros;

/// Stateful increment driver over one solve's disk-edge set `E`.
#[derive(Clone, Debug)]
pub struct MinCostIncrementer {
    /// Disk indices still eligible for increments.
    active: Vec<usize>,
}

impl MinCostIncrementer {
    /// Starts with every disk that stores at least one query bucket.
    pub fn new(inst: &RetrievalInstance) -> MinCostIncrementer {
        MinCostIncrementer {
            active: (0..inst.num_disks())
                .filter(|&j| inst.replicas_per_disk[j] > 0)
                .collect(),
        }
    }

    /// Number of disks still eligible.
    pub fn active_disks(&self) -> usize {
        self.active.len()
    }

    /// One `IncrementMinCost` step: raises by one the capacity of every
    /// disk edge achieving the minimum next completion time. Returns the
    /// number of edges incremented (0 when no disk remains eligible) —
    /// callers report it as
    /// [`crate::obs::trace::TraceEvent::CapacityIncrement`].
    ///
    /// Capacities are re-read from the graph on every step, so the driver
    /// tolerates callers raising capacities out of band between steps (the
    /// anytime bail-out jumps them to a feasible bound) — a step never
    /// lowers a capacity.
    pub fn increment<W: ArenaIndex>(
        &mut self,
        inst: &RetrievalInstance,
        g: &mut FlowGraph<W>,
    ) -> usize {
        // Drop saturated disks (Algorithm 3 lines 3-5).
        self.active
            .retain(|&j| inst.replicas_per_disk[j] > g.cap(inst.disk_edges[j]) as u64);

        // First pass: the minimum next completion time (lines 6-9).
        let mut min_cost = Micros::MAX;
        for &j in &self.active {
            let next = g.cap(inst.disk_edges[j]) as u64 + 1;
            let cost = inst.disks[j].completion_time(next);
            if cost < min_cost {
                min_cost = cost;
            }
        }
        if min_cost == Micros::MAX {
            return 0;
        }

        // Second pass: increment every edge matching it (lines 10-12).
        let mut incremented = 0;
        for &j in &self.active {
            let e = inst.disk_edges[j];
            let next = g.cap(e) as u64 + 1;
            if inst.disks[j].completion_time(next) == min_cost {
                g.set_cap(e, next as i64);
                incremented += 1;
            }
        }
        incremented
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::experiments::paper_example;
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;

    fn homogeneous_instance() -> RetrievalInstance {
        let system = SystemConfig::homogeneous(CHEETAH, 7);
        let alloc = OrthogonalAllocation::new(7, rds_decluster::allocation::Placement::SingleSite);
        let q = RangeQuery::new(0, 0, 3, 2);
        RetrievalInstance::build(&system, &alloc, &q.buckets(7))
    }

    #[test]
    fn homogeneous_disks_increment_together() {
        // With identical unloaded disks all eligible edges share the same
        // next cost, so one step raises them all — matching the basic
        // problem's "increment all edges" rule.
        let inst = homogeneous_instance();
        let mut g = inst.graph.clone();
        let mut inc = MinCostIncrementer::new(&inst);
        let stored_disks = inst.replicas_per_disk.iter().filter(|&&r| r > 0).count();
        assert_eq!(inc.increment(&inst, &mut g), stored_disks);
        for (j, &e) in inst.disk_edges.iter().enumerate() {
            let expect = if inst.replicas_per_disk[j] > 0 { 1 } else { 0 };
            assert_eq!(g.cap(e), expect, "disk {j}");
        }
    }

    #[test]
    fn heterogeneous_disks_increment_cheapest_first() {
        // Paper example: fast site-2 disks (6.1ms + 1ms delay = 7.1ms for
        // one bucket) beat site-1 raptors (8.3 + 3 = 11.3ms) and slow
        // barracudas (13.2 + 1 = 14.2ms).
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(0, 0, 7, 7);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let mut g = inst.graph.clone();
        let mut inc = MinCostIncrementer::new(&inst);
        inc.increment(&inst, &mut g);
        for j in [7usize, 8, 10, 13] {
            assert_eq!(g.cap(inst.disk_edges[j]), 1, "fast disk {j}");
        }
        for j in (0..7).chain([9, 11, 12]) {
            assert_eq!(g.cap(inst.disk_edges[j]), 0, "slower disk {j}");
        }
    }

    #[test]
    fn saturated_disks_are_removed() {
        let inst = homogeneous_instance();
        let mut g = inst.graph.clone();
        let mut inc = MinCostIncrementer::new(&inst);
        // The query has 6 buckets spread over ≤ 7 disks; each disk stores
        // at most a few of them. Keep incrementing until exhaustion.
        let mut guard = 0;
        while inc.increment(&inst, &mut g) > 0 {
            guard += 1;
            assert!(guard < 1000, "incrementer failed to terminate");
        }
        assert_eq!(inc.active_disks(), 0);
        // Every disk's capacity stops exactly at its replica count.
        for (j, &e) in inst.disk_edges.iter().enumerate() {
            assert_eq!(g.cap(e) as u64, inst.replicas_per_disk[j], "disk {j}");
        }
    }

    #[test]
    fn increment_count_bounded_by_c_q() {
        let inst = homogeneous_instance();
        let mut g = inst.graph.clone();
        let mut inc = MinCostIncrementer::new(&inst);
        let mut steps = 0;
        while inc.increment(&inst, &mut g) > 0 {
            steps += 1;
        }
        // O(c * |Q|) bound on total capacity raised; steps is smaller still.
        assert!(steps as usize <= inst.max_copies * inst.query_size());
    }

    #[test]
    fn costs_scanned_in_nondecreasing_order() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(1, 2, 4, 5);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
        let mut g = inst.graph.clone();
        let mut inc = MinCostIncrementer::new(&inst);
        let mut last = Micros::ZERO;
        loop {
            // Capture the cost of the step about to happen.
            let mut next_cost = Micros::MAX;
            for j in 0..inst.num_disks() {
                if inst.replicas_per_disk[j] > g.cap(inst.disk_edges[j]) as u64 {
                    let c = inst.disks[j].completion_time(g.cap(inst.disk_edges[j]) as u64 + 1);
                    next_cost = next_cost.min(c);
                }
            }
            if inc.increment(&inst, &mut g) == 0 {
                break;
            }
            assert!(next_cost >= last, "costs must be non-decreasing");
            last = next_cost;
        }
    }
}
