//! Parallel integrated retrieval (paper Section V).
//!
//! The paper parallelizes the push/relabel operations inside Algorithm 6
//! using the lock-free asynchronous method of Hong & He (TPDS 2011); the
//! driver — binary capacity scaling, flow conservation, final incremental
//! phase — is unchanged. Accordingly, this solver reuses
//! `crate::pr`'s shared binary-scaling driver with the multithreaded
//! [`rds_flow::parallel::ParallelPushRelabel`] engine.

use crate::error::SolveError;
use crate::network::RetrievalInstance;
use crate::pr::{binary_scaling_integrated, outcome_with_budget, warm_integrated};
use crate::schedule::{RetrievalOutcome, SolveStats};
use crate::solver::RetrievalSolver;
use crate::workspace::{on_graph, ArmedBudget, Workspace};

/// Multithreaded Algorithm 6 (the paper evaluates 2 threads).
#[derive(Clone, Copy, Debug)]
pub struct ParallelPushRelabelBinary {
    /// Number of worker threads for the push/relabel phase.
    pub threads: usize,
}

impl Default for ParallelPushRelabelBinary {
    fn default() -> Self {
        ParallelPushRelabelBinary { threads: 2 }
    }
}

impl ParallelPushRelabelBinary {
    /// Creates a solver using `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        ParallelPushRelabelBinary {
            threads: threads.max(1),
        }
    }
}

impl RetrievalSolver for ParallelPushRelabelBinary {
    fn name(&self) -> &'static str {
        "PR-binary-parallel"
    }

    fn solve_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), false);
        let budget = ArmedBudget::start(ws.armed_budget());
        ws.begin(inst)?;
        ws.ensure_parallel(self.threads, inst.graph.num_vertices());
        let mut stats = SolveStats::default();
        let result = on_graph!(ws, |g| {
            let (_, engine) = ws.parallel.as_mut().expect("parallel engine cached");
            match binary_scaling_integrated(
                engine,
                inst,
                &mut *g,
                &mut stats,
                &mut ws.stored_flows,
                &mut ws.stored_excess,
                &mut ws.tracer,
                budget,
            ) {
                Ok(bailed) => outcome_with_budget(inst, &*g, stats, bailed, &mut ws.tracer),
                Err(e) => Err(e),
            }
        });
        ws.complete();
        result
    }

    fn supports_delta(&self) -> bool {
        true
    }

    fn resume_in(
        &self,
        inst: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        ws.tracer.note_solver(self.name(), true);
        let budget = ArmedBudget::start(ws.armed_budget());
        let mut stats = SolveStats::default();
        if !ws.begin_warm_parallel(inst, self.threads)? {
            return Err(SolveError::DeltaUnsupported {
                solver: self.name(),
            });
        }
        let result = on_graph!(ws, |g| {
            let (_, engine) = ws.parallel.as_mut().expect("parallel engine cached");
            match warm_integrated(
                engine,
                inst,
                &mut *g,
                &mut stats,
                &mut ws.stored_excess,
                &ws.warm_changed,
                &mut ws.tracer,
                true,
                budget,
            ) {
                Ok(bailed) => outcome_with_budget(inst, &*g, stats, bailed, &mut ws.tracer),
                Err(e) => Err(e),
            }
        });
        ws.complete();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr::PushRelabelBinary;
    use crate::verify::{assert_outcome_valid, oracle_optimal_response};
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_decluster::rda::RandomDuplicateAllocation;
    use rds_storage::experiments::{experiment, paper_example, ExperimentId};

    #[test]
    fn parallel_matches_sequential_on_paper_example() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        for (r, c) in [(3usize, 2usize), (7, 7), (5, 2)] {
            let q = RangeQuery::new(0, 0, r, c);
            let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(7));
            let par = ParallelPushRelabelBinary::new(2).solve(&inst).unwrap();
            let seq = PushRelabelBinary.solve(&inst).unwrap();
            assert_eq!(par.response_time, seq.response_time, "query {r}x{c}");
            assert_outcome_valid(&inst, &par);
        }
    }

    #[test]
    fn thread_counts_agree() {
        let system = experiment(ExperimentId::Exp5, 6, 9);
        let alloc = RandomDuplicateAllocation::two_site(6, 9);
        let q = RangeQuery::new(1, 1, 5, 4);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(6));
        let want = oracle_optimal_response(&inst);
        for threads in [1usize, 2, 4] {
            let outcome = ParallelPushRelabelBinary::new(threads)
                .solve(&inst)
                .unwrap();
            assert_eq!(outcome.response_time, want, "{threads} threads");
            assert_outcome_valid(&inst, &outcome);
        }
    }

    #[test]
    fn repeated_runs_are_deterministic_in_value() {
        // The schedule may differ between runs (races change which replica
        // serves a bucket) but the optimal response time never does.
        let system = experiment(ExperimentId::Exp5, 8, 21);
        let alloc = OrthogonalAllocation::new(8, Placement::PerSite);
        let q = RangeQuery::new(2, 3, 6, 6);
        let inst = RetrievalInstance::build(&system, &alloc, &q.buckets(8));
        let want = PushRelabelBinary.solve(&inst).unwrap().response_time;
        for _ in 0..5 {
            let got = ParallelPushRelabelBinary::new(2).solve(&inst).unwrap();
            assert_eq!(got.response_time, want);
            assert_outcome_valid(&inst, &got);
        }
    }

    #[test]
    fn empty_query() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        let outcome = ParallelPushRelabelBinary::default().solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 0);
    }
}
