//! The uniform solver interface.

use crate::error::SolveError;
use crate::network::RetrievalInstance;
use crate::schedule::RetrievalOutcome;
use crate::workspace::Workspace;

/// A retrieval-scheduling algorithm.
///
/// All implementations compute the *optimal* response time schedule; they
/// differ only in how much work they spend finding it. The instance is
/// taken by shared reference — solvers never mutate it — so one instance
/// can be solved by several algorithms and the outcomes compared.
///
/// [`RetrievalSolver::solve_in`] is the primary entry point: it runs the
/// solve inside a caller-provided [`Workspace`], reusing its graph copy,
/// engine arrays and snapshot buffers. [`RetrievalSolver::solve`] is a
/// convenience wrapper that allocates a throwaway workspace — fine for
/// one-off solves, wasteful in a loop.
pub trait RetrievalSolver {
    /// Short algorithm name for reports ("PR-binary", "BB-PR", ...).
    fn name(&self) -> &'static str;

    /// Computes an optimal response time retrieval schedule using the
    /// buffers of `ws`. Returns an error instead of panicking when the
    /// instance is infeasible or violates the algorithm's preconditions.
    fn solve_in(
        &self,
        instance: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError>;

    /// Computes an optimal response time retrieval schedule in a fresh
    /// workspace.
    fn solve(&self, instance: &RetrievalInstance) -> Result<RetrievalOutcome, SolveError> {
        self.solve_in(instance, &mut Workspace::new())
    }

    /// Whether [`RetrievalSolver::resume_in`] can re-solve from a warm
    /// delta-patched workspace. Callers use this to decide up front
    /// whether to patch or rebuild.
    fn supports_delta(&self) -> bool {
        false
    }

    /// Re-solves after the caller staged warm state into `ws` (see
    /// `Workspace::stage_warm`): the previous solve's flow is patched —
    /// stale units cancelled, disk capacities retargeted — instead of
    /// recomputed from scratch. The default declines with
    /// [`SolveError::DeltaUnsupported`]; solvers whose engine conserves
    /// flow across runs (the push-relabel family) override it.
    fn resume_in(
        &self,
        instance: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        let _ = instance;
        ws.clear_warm_stage();
        Err(SolveError::DeltaUnsupported {
            solver: self.name(),
        })
    }
}

impl<T: RetrievalSolver + ?Sized> RetrievalSolver for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn solve_in(
        &self,
        instance: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        (**self).solve_in(instance, ws)
    }
    fn supports_delta(&self) -> bool {
        (**self).supports_delta()
    }
    fn resume_in(
        &self,
        instance: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        (**self).resume_in(instance, ws)
    }
}

impl<T: RetrievalSolver + ?Sized> RetrievalSolver for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn solve_in(
        &self,
        instance: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        (**self).solve_in(instance, ws)
    }
    fn supports_delta(&self) -> bool {
        (**self).supports_delta()
    }
    fn resume_in(
        &self,
        instance: &RetrievalInstance,
        ws: &mut Workspace,
    ) -> Result<RetrievalOutcome, SolveError> {
        (**self).resume_in(instance, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Schedule, SolveStats};

    struct Nop;

    impl RetrievalSolver for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn solve_in(
            &self,
            _instance: &RetrievalInstance,
            _ws: &mut Workspace,
        ) -> Result<RetrievalOutcome, SolveError> {
            Ok(RetrievalOutcome {
                schedule: Schedule::new(Vec::new()),
                response_time: rds_storage::time::Micros::ZERO,
                flow_value: 0,
                stats: SolveStats::default(),
            })
        }
    }

    #[test]
    fn trait_is_object_safe_and_solve_delegates() {
        let solvers: Vec<Box<dyn RetrievalSolver>> = vec![Box::new(Nop)];
        assert_eq!(solvers[0].name(), "nop");
        let system = rds_storage::model::SystemConfig::homogeneous(rds_storage::specs::CHEETAH, 2);
        let alloc = rds_decluster::orthogonal::OrthogonalAllocation::new(
            2,
            rds_decluster::allocation::Placement::SingleSite,
        );
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        let outcome = solvers[0].solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 0);
    }
}
