//! The uniform solver interface.

use crate::network::RetrievalInstance;
use crate::schedule::RetrievalOutcome;

/// A retrieval-scheduling algorithm.
///
/// All implementations compute the *optimal* response time schedule; they
/// differ only in how much work they spend finding it. `solve` takes the
/// instance by shared reference and clones its graph internally, so one
/// instance can be solved by several algorithms and the outcomes compared.
pub trait RetrievalSolver {
    /// Short algorithm name for reports ("PR-binary", "BB-PR", ...).
    fn name(&self) -> &'static str;

    /// Computes an optimal response time retrieval schedule.
    fn solve(&self, instance: &RetrievalInstance) -> RetrievalOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Schedule, SolveStats};

    struct Nop;

    impl RetrievalSolver for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn solve(&self, _instance: &RetrievalInstance) -> RetrievalOutcome {
            RetrievalOutcome {
                schedule: Schedule::new(Vec::new()),
                response_time: rds_storage::time::Micros::ZERO,
                flow_value: 0,
                stats: SolveStats::default(),
            }
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let solvers: Vec<Box<dyn RetrievalSolver>> = vec![Box::new(Nop)];
        assert_eq!(solvers[0].name(), "nop");
    }
}
