//! Online serving loop: admission control, deadlines, backpressure.
//!
//! [`Engine::serve`] turns the batch engine into a long-running scheduler:
//! one worker per shard drains a bounded submission queue, coalescing
//! consecutive same-stream queries onto the warm-start/delta path, while
//! the caller submits [`QueryRequest`]s through a [`ServeHandle`] and
//! receives [`ServeResponse`]s asynchronously.
//!
//! ## Admission and backpressure
//!
//! Admission is synchronous and typed: [`ServeHandle::submit`] either
//! returns a [`Ticket`] — a promise that exactly one response will carry
//! it — or a [`Rejected`] explaining why the request was turned away
//! *before* it consumed queue space:
//!
//! * [`Rejected::QueueFull`] — the stream's shard queue is at
//!   [`ServeConfig::queue_capacity`].
//! * [`Rejected::DeadlineUnmeetable`] — the SLA deadline already passed at
//!   admission time.
//! * [`Rejected::ShedLowPriority`] — the queue crossed
//!   [`ServeConfig::shed_watermark`] and the request's
//!   [`PriorityClass`] is sheddable ([`PriorityClass::Batch`]).
//! * [`Rejected::ShuttingDown`] — the loop is draining.
//!
//! ## Deadlines and anytime solves
//!
//! A request may carry an absolute SLA deadline on the serve clock. On the
//! real clock the worker tightens the engine's armed
//! [`SolveBudget`] to the time remaining, so an
//! overrunning solve is finalized early at the best feasible bound (the
//! achieved-vs-optimal gap lands in
//! [`SolveStats::anytime_gap`](crate::schedule::SolveStats::anytime_gap))
//! instead of blocking past the deadline.
//!
//! ## Determinism
//!
//! With [`ServeClock::Virtual`] the loop never reads wall time: arrivals
//! come from the request, fault probes use the simulated clock, and
//! budgets act on probe counts only — so, as with
//! [`Engine::submit_batch`], results are identical for every shard count.
//! [`ServeClock::Real`] trades that for liveness: arrivals, deadline
//! enforcement and fault probes all use the wall clock, so mid-flight
//! health transitions trigger replanning.

use crate::engine::{
    new_stream_state, run_one_core, ArrivalClock, BatchCtx, BatchQuery, Engine, FaultConfig,
    FusedLane, ProbeClock, ShardTally,
};
use crate::error::EngineError;
use crate::obs::metrics::{Histogram, LatencySummary, MetricsRegistry};
use crate::obs::recorder::{FlightRecorder, RecorderStats};
use crate::obs::slo::{SloReport, SloTrackerSet};
use crate::obs::span::{PhaseKind, QuerySpan, RejectReason, SpanId, SpanOutcome};
use crate::schedule::SolveStats;
use crate::session::{SessionOutcome, SessionState};
use crate::solver::RetrievalSolver;
use crate::spec::{ArenaLayout, SolveBudget};
use rds_decluster::allocation::ReplicaSource;
use rds_decluster::query::Bucket;
use rds_flow::parallel::WorkerPool;
use rds_storage::time::Micros;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduling class of a request: who gets shed first under overload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PriorityClass {
    /// Latency-sensitive; never shed.
    Interactive,
    /// The default class; never shed.
    #[default]
    Standard,
    /// Throughput work; shed first when the queue crosses the watermark.
    Batch,
}

impl PriorityClass {
    /// Number of classes (array dimension for per-class stats).
    pub const COUNT: usize = 3;

    /// Every class, in shed order (last is shed first).
    pub const ALL: [PriorityClass; PriorityClass::COUNT] = [
        PriorityClass::Interactive,
        PriorityClass::Standard,
        PriorityClass::Batch,
    ];

    /// Stable lowercase name (metric label).
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Standard => "standard",
            PriorityClass::Batch => "batch",
        }
    }

    /// Whether overload shedding may reject this class.
    pub fn sheddable(self) -> bool {
        matches!(self, PriorityClass::Batch)
    }
}

/// One query submitted to the serving loop: the batch fields plus a
/// priority class and an optional SLA deadline.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Stream (independent session) identifier; pins the request to shard
    /// `stream % num_shards`.
    pub stream: usize,
    /// The requested buckets.
    pub buckets: Vec<Bucket>,
    /// Scheduling class (default [`PriorityClass::Standard`]).
    pub class: PriorityClass,
    /// Absolute deadline on the serve clock. Requests past it are
    /// rejected at admission; on the real clock the solve budget is
    /// tightened to the time remaining.
    pub deadline: Option<Micros>,
    /// Arrival time. Authoritative under [`ServeClock::Virtual`]
    /// (monotone non-decreasing per stream, as in
    /// [`Engine::submit_batch`]); overwritten with the admission wall
    /// time under [`ServeClock::Real`].
    pub arrival: Micros,
}

impl QueryRequest {
    /// A standard-class request with no deadline, arriving at time zero.
    pub fn new(stream: usize, buckets: Vec<Bucket>) -> QueryRequest {
        QueryRequest {
            stream,
            buckets,
            class: PriorityClass::default(),
            deadline: None,
            arrival: Micros::ZERO,
        }
    }

    /// Sets the priority class.
    pub fn class(mut self, class: PriorityClass) -> QueryRequest {
        self.class = class;
        self
    }

    /// Sets the absolute SLA deadline.
    pub fn deadline(mut self, deadline: Micros) -> QueryRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the (virtual-clock) arrival time.
    pub fn arriving_at(mut self, arrival: Micros) -> QueryRequest {
        self.arrival = arrival;
        self
    }
}

/// Typed admission rejection: why a request never entered the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// The shard queue is at capacity.
    QueueFull {
        /// The full shard.
        shard: usize,
        /// Its depth at rejection.
        depth: usize,
    },
    /// The deadline already passed at admission time.
    DeadlineUnmeetable {
        /// The requested deadline.
        deadline: Micros,
        /// The serve clock when the request was admitted.
        now: Micros,
    },
    /// Overload shedding turned away a sheddable class.
    ShedLowPriority {
        /// The shed request's class.
        class: PriorityClass,
        /// Queue depth that tripped the watermark.
        depth: usize,
    },
    /// The loop is draining; no new work is admitted.
    ShuttingDown,
}

impl Rejected {
    /// The flat [`RejectReason`] of this rejection (metric label, span
    /// attribute) — the detail payload is dropped.
    pub fn reason(&self) -> RejectReason {
        match self {
            Rejected::QueueFull { .. } => RejectReason::QueueFull,
            Rejected::DeadlineUnmeetable { .. } => RejectReason::DeadlineUnmeetable,
            Rejected::ShedLowPriority { .. } => RejectReason::ShedLowPriority,
            Rejected::ShuttingDown => RejectReason::ShuttingDown,
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { shard, depth } => {
                write!(f, "shard {shard} queue full at depth {depth}")
            }
            Rejected::DeadlineUnmeetable { deadline, now } => write!(
                f,
                "deadline {}us already passed at {}us",
                deadline.as_micros(),
                now.as_micros()
            ),
            Rejected::ShedLowPriority { class, depth } => {
                write!(f, "{} request shed at depth {depth}", class.name())
            }
            Rejected::ShuttingDown => write!(f, "serving loop is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why an *admitted* request did not produce a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// Solving failed (infeasible, solver rejection, contained panic).
    Engine(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

/// Receipt for one admitted request; its response carries the same value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// One resolved request.
#[derive(Debug)]
#[non_exhaustive]
pub struct ServeResponse {
    /// The admission receipt this response settles.
    pub ticket: Ticket,
    /// The request's stream.
    pub stream: usize,
    /// The request's priority class.
    pub class: PriorityClass,
    /// The schedule (possibly degraded/partial) or a typed failure.
    pub result: Result<SessionOutcome, ServeError>,
    /// Time the request spent queued, on the serve clock (always zero
    /// under [`ServeClock::Virtual`]).
    pub queued: Micros,
    /// Whether the request finished past its deadline.
    pub deadline_missed: bool,
}

/// Which clock drives arrivals, deadlines and fault probes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeClock {
    /// Wall clock (epoch = serve start). Mid-flight health transitions
    /// are observed; deadline budgets are enforced in wall time.
    #[default]
    Real,
    /// Simulated time from request arrivals. Fully deterministic: results
    /// are identical for every shard count, as in batch mode.
    Virtual,
}

/// Knobs of one serving run.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Maximum queued requests per shard before [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Queue depth at which sheddable classes get
    /// [`Rejected::ShedLowPriority`]; `None` disables shedding.
    pub shed_watermark: Option<usize>,
    /// How long a worker waits for more arrivals before draining a
    /// non-full queue, to coalesce same-stream requests onto the
    /// warm-start/delta path (and widen fused drains). `None` drains
    /// immediately. Under [`ServeClock::Virtual`] the duration itself is
    /// meaningless — any window instead coalesces deterministically
    /// until the batch reaches [`ServeConfig::batch_max`] or admission
    /// closes, so batch composition is reproducible for any shard count.
    /// Virtual callers must therefore not block on
    /// [`ServeHandle::recv`] before either submitting `batch_max`
    /// requests to a shard or returning from the serve closure.
    pub batch_window: Option<Duration>,
    /// Maximum requests drained per wakeup.
    pub batch_max: usize,
    /// The serve clock (default [`ServeClock::Real`]).
    pub clock: ServeClock,
    /// Whether served requests get query spans recorded into the shard
    /// flight recorders (default `true`). Turning this off removes the
    /// span channel from the hot path entirely — the baseline the
    /// `span_overhead` bench measures against. Solve results are
    /// bit-identical either way.
    pub record_spans: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 1024,
            shed_watermark: None,
            batch_window: None,
            batch_max: 64,
            clock: ServeClock::default(),
            record_spans: true,
        }
    }
}

impl ServeConfig {
    /// Sets the per-shard queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables overload shedding above `depth` queued requests.
    pub fn shed_watermark(mut self, depth: usize) -> ServeConfig {
        self.shed_watermark = Some(depth);
        self
    }

    /// Sets the coalescing window (see [`ServeConfig::batch_window`] for
    /// the deterministic virtual-clock semantics).
    pub fn batch_window(mut self, window: Duration) -> ServeConfig {
        self.batch_window = Some(window);
        self
    }

    /// Sets the per-wakeup drain limit.
    pub fn batch_max(mut self, max: usize) -> ServeConfig {
        self.batch_max = max.max(1);
        self
    }

    /// Selects the serve clock.
    pub fn clock(mut self, clock: ServeClock) -> ServeConfig {
        self.clock = clock;
        self
    }

    /// Enables or disables query-span recording (default on).
    pub fn record_spans(mut self, on: bool) -> ServeConfig {
        self.record_spans = on;
        self
    }

    /// Shorthand for the deterministic simulated clock.
    pub fn virtual_time(self) -> ServeConfig {
        self.clock(ServeClock::Virtual)
    }
}

/// The serve clock: a wall epoch plus the high-water arrival mark that
/// stands in for "now" under virtual time.
struct ClockState {
    mode: ServeClock,
    epoch: Instant,
    virtual_now: AtomicU64,
}

impl ClockState {
    fn new(mode: ServeClock) -> ClockState {
        ClockState {
            mode,
            epoch: Instant::now(),
            virtual_now: AtomicU64::new(0),
        }
    }

    fn now(&self) -> Micros {
        match self.mode {
            ServeClock::Real => Micros::from_micros(self.epoch.elapsed().as_micros() as u64),
            ServeClock::Virtual => Micros::from_micros(self.virtual_now.load(Ordering::Relaxed)),
        }
    }

    fn observe_arrival(&self, arrival: Micros) {
        self.virtual_now
            .fetch_max(arrival.as_micros(), Ordering::Relaxed);
    }
}

/// Wall-clock fault probe source for the serving loop: `now` is real
/// elapsed time and backoff waits actually sleep, capped at the query's
/// deadline so replanning never blocks past it.
struct RealProbeClock<'s> {
    clock: &'s ClockState,
    deadline: Option<Micros>,
}

impl ProbeClock for RealProbeClock<'_> {
    fn now(&self, _arrival: Micros) -> Micros {
        self.clock.now()
    }

    fn wait_until(&self, t: Micros) {
        let cap = self.deadline.map_or(t, |d| t.min(d));
        let now = self.clock.now();
        if cap > now {
            std::thread::sleep(Duration::from_micros((cap - now).as_micros()));
        }
    }
}

/// One admitted request waiting in a shard queue.
struct Admitted {
    ticket: Ticket,
    req: QueryRequest,
    enqueued: Instant,
}

struct QueueState {
    items: VecDeque<Admitted>,
    open: bool,
    /// High-water arrival mark (real clock): keeps per-shard admission
    /// arrivals monotone even if the wall clock reads race.
    last_arrival: Micros,
}

struct ShardQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl ShardQueue {
    fn new() -> ShardQueue {
        ShardQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                open: true,
                last_arrival: Micros::ZERO,
            }),
            cv: Condvar::new(),
        }
    }
}

#[derive(Default)]
struct AdmissionCounters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_shed: AtomicU64,
    rejected_shutdown: AtomicU64,
    max_queue_depth: AtomicU64,
    /// Rejections by `[reason][class]`, indexed like [`RejectReason::ALL`]
    /// × [`PriorityClass::ALL`] — the source of the labeled
    /// `rds_serve_rejected_total{class,reason}` counter.
    rejected_by: [[AtomicU64; PriorityClass::COUNT]; RejectReason::COUNT],
}

/// State shared between the handle (producer side) and the workers.
struct Shared {
    queues: Vec<ShardQueue>,
    clock: ClockState,
    capacity: usize,
    shed_watermark: Option<usize>,
    record_spans: bool,
    counters: AdmissionCounters,
    tickets: AtomicU64,
    slo: crate::obs::slo::SloPolicy,
    /// Spans of rejected submissions plus their availability-SLO tracker.
    /// Rejections never reach a shard, so they get their own recorder;
    /// admission is already serialized per shard, and a rejection is off
    /// the hot serving path, so one extra mutex is fine here.
    rejlog: Mutex<(FlightRecorder, SloTrackerSet)>,
}

impl Shared {
    /// Accounts one admission rejection: the per-(reason, class) counter,
    /// a rejection span in the flight recorder, and an availability-SLO
    /// event.
    fn note_rejection(
        &self,
        reason: RejectReason,
        class: PriorityClass,
        stream: usize,
        arrival: Micros,
    ) {
        self.counters.rejected_by[reason as usize][class as usize].fetch_add(1, Ordering::Relaxed);
        let sub = self.counters.submitted.load(Ordering::Relaxed);
        let mut log = self.rejlog.lock().expect("rejection log mutex");
        let (recorder, slo) = &mut *log;
        let mut span = recorder.checkout();
        span.id = SpanId(sub);
        span.stream = stream;
        span.shard = stream % self.queues.len();
        span.class = class as usize;
        span.arrival = arrival;
        span.completion = arrival;
        span.outcome = SpanOutcome::Rejected(reason);
        span.record(PhaseKind::Admitted, 0, arrival.as_micros(), class as u64);
        span.record(PhaseKind::Rejected, 0, reason as u64, 0);
        recorder.retire(span);
        slo.record_unavailable(class, arrival.max(self.clock.now()));
    }
}

/// The producer side of a serving run: submit requests, receive
/// responses, read the clock. Shareable across caller threads (`&self`
/// everywhere).
pub struct ServeHandle {
    shared: Arc<Shared>,
    responses: Mutex<mpsc::Receiver<ServeResponse>>,
}

impl ServeHandle {
    /// Synchronous admission: a [`Ticket`] promising exactly one
    /// [`ServeResponse`], or a typed [`Rejected`].
    pub fn submit(&self, mut req: QueryRequest) -> Result<Ticket, Rejected> {
        let s = &*self.shared;
        s.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let shard = req.stream % s.queues.len();
        let q = &s.queues[shard];
        let mut st = q.state.lock().expect("queue mutex");
        if !st.open {
            s.counters.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            let arrival = match s.clock.mode {
                ServeClock::Virtual => req.arrival,
                ServeClock::Real => s.clock.now(),
            };
            s.note_rejection(RejectReason::ShuttingDown, req.class, req.stream, arrival);
            return Err(Rejected::ShuttingDown);
        }
        let arrival = match s.clock.mode {
            ServeClock::Virtual => req.arrival,
            ServeClock::Real => s.clock.now().max(st.last_arrival),
        };
        if let Some(deadline) = req.deadline {
            if deadline < arrival {
                s.counters.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                s.note_rejection(
                    RejectReason::DeadlineUnmeetable,
                    req.class,
                    req.stream,
                    arrival,
                );
                return Err(Rejected::DeadlineUnmeetable {
                    deadline,
                    now: arrival,
                });
            }
        }
        let depth = st.items.len();
        if depth >= s.capacity {
            s.counters
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            s.note_rejection(RejectReason::QueueFull, req.class, req.stream, arrival);
            return Err(Rejected::QueueFull { shard, depth });
        }
        if req.class.sheddable() && s.shed_watermark.is_some_and(|w| depth >= w) {
            s.counters.rejected_shed.fetch_add(1, Ordering::Relaxed);
            s.note_rejection(
                RejectReason::ShedLowPriority,
                req.class,
                req.stream,
                arrival,
            );
            return Err(Rejected::ShedLowPriority {
                class: req.class,
                depth,
            });
        }
        req.arrival = arrival;
        if s.clock.mode == ServeClock::Virtual {
            s.clock.observe_arrival(arrival);
        } else {
            st.last_arrival = arrival;
        }
        let ticket = Ticket(s.tickets.fetch_add(1, Ordering::Relaxed) + 1);
        st.items.push_back(Admitted {
            ticket,
            req,
            enqueued: Instant::now(),
        });
        s.counters
            .max_queue_depth
            .fetch_max(st.items.len() as u64, Ordering::Relaxed);
        s.counters.admitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        q.cv.notify_one();
        Ok(ticket)
    }

    /// Blocks for the next response. `None` once the loop has shut down
    /// and every admitted request's response was claimed.
    pub fn recv(&self) -> Option<ServeResponse> {
        self.responses.lock().expect("receiver mutex").recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<ServeResponse> {
        self.responses
            .lock()
            .expect("receiver mutex")
            .try_recv()
            .ok()
    }

    /// The current serve-clock reading (virtual: latest arrival seen).
    pub fn now(&self) -> Micros {
        self.shared.clock.now()
    }

    /// Current depth of `shard`'s queue.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.shared.queues[shard]
            .state
            .lock()
            .expect("queue mutex")
            .items
            .len()
    }

    /// Closes admission on every queue; workers drain what was already
    /// admitted and exit. Called automatically when the serve closure
    /// returns; calling it early (e.g. from a producer thread) is safe
    /// and idempotent.
    pub fn shutdown(&self) {
        for q in &self.shared.queues {
            q.state.lock().expect("queue mutex").open = false;
            q.cv.notify_all();
        }
    }
}

/// Per-class latency and completion accounting.
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct ClassServeStats {
    /// Requests of this class that resolved (schedule or typed error).
    pub completed: u64,
    /// Responses of this class that finished past their deadline.
    pub deadline_misses: u64,
    /// Queue-wait time per request, µs (all zero under virtual time).
    pub queue_wait_us: Histogram,
    /// Admission→resolution time per request, µs.
    pub turnaround_us: Histogram,
}

impl ClassServeStats {
    fn merge(&mut self, other: &ClassServeStats) {
        self.completed += other.completed;
        self.deadline_misses += other.deadline_misses;
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.turnaround_us.merge(&other.turnaround_us);
    }
}

/// Everything one serving run measured.
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct ServeStats {
    /// Submission attempts (admitted + rejected).
    pub submitted: u64,
    /// Requests that entered a queue (each resolves exactly once).
    pub admitted: u64,
    /// Responses produced.
    pub completed: u64,
    /// [`Rejected::QueueFull`] admissions.
    pub rejected_queue_full: u64,
    /// [`Rejected::DeadlineUnmeetable`] admissions.
    pub rejected_deadline: u64,
    /// [`Rejected::ShedLowPriority`] admissions.
    pub rejected_shed: u64,
    /// [`Rejected::ShuttingDown`] admissions.
    pub rejected_shutdown: u64,
    /// Responses that resolved with an error.
    pub errors: u64,
    /// Contained solver panics.
    pub panics: u64,
    /// Responses that finished past their deadline.
    pub deadline_misses: u64,
    /// Highest queue depth observed across shards.
    pub max_queue_depth: u64,
    /// Wall time of the whole serving run.
    pub elapsed: Duration,
    /// Per-class accounting, indexed like [`PriorityClass::ALL`].
    pub classes: [ClassServeStats; PriorityClass::COUNT],
    /// Solver work summed over every served request.
    pub solve_stats: SolveStats,
    /// Rejections by `[reason][class]`, indexed like [`RejectReason::ALL`]
    /// × [`PriorityClass::ALL`].
    pub rejected_by: [[u64; PriorityClass::COUNT]; RejectReason::COUNT],
    /// Error-budget burn report for the run's
    /// [`SloPolicy`](crate::obs::slo::SloPolicy) (responses and
    /// rejections both count).
    pub slo: SloReport,
    /// Flight-recorder retention accounting merged over every shard plus
    /// the rejection recorder.
    pub recorder: RecorderStats,
}

impl ServeStats {
    /// Total rejections of any kind.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_deadline
            + self.rejected_shed
            + self.rejected_shutdown
    }

    /// Fraction of submissions turned away by load shedding or a full
    /// queue (0.0 when nothing was submitted).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.rejected_queue_full + self.rejected_shed) as f64 / self.submitted as f64
    }

    /// Responses per second of run wall time.
    pub fn completed_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Turnaround quantile summary of one class.
    pub fn class_latency(&self, class: PriorityClass) -> LatencySummary {
        self.classes[class as usize].turnaround_us.summary()
    }

    /// Exports the run as `rds_serve_*` metrics: admission counters, the
    /// queue-depth high-water gauge, and per-class latency histograms.
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("rds_serve_submitted_total", self.submitted);
        reg.inc_counter("rds_serve_admitted_total", self.admitted);
        reg.inc_counter("rds_serve_completed_total", self.completed);
        reg.inc_counter(
            "rds_serve_rejected_queue_full_total",
            self.rejected_queue_full,
        );
        reg.inc_counter("rds_serve_rejected_deadline_total", self.rejected_deadline);
        reg.inc_counter("rds_serve_rejected_shed_total", self.rejected_shed);
        reg.inc_counter("rds_serve_rejected_shutdown_total", self.rejected_shutdown);
        reg.inc_counter("rds_serve_errors_total", self.errors);
        reg.inc_counter("rds_serve_panics_total", self.panics);
        reg.inc_counter("rds_serve_deadline_misses_total", self.deadline_misses);
        reg.inc_counter(
            "rds_serve_budget_expirations_total",
            self.solve_stats.budget_expirations,
        );
        reg.set_gauge("rds_serve_max_queue_depth", self.max_queue_depth as i64);
        reg.set_help(
            "rds_serve_rejected_total",
            "Admission rejections by reason and priority class",
        );
        for (r, reason) in RejectReason::ALL.iter().enumerate() {
            for (ci, class) in PriorityClass::ALL.iter().enumerate() {
                let n = self.rejected_by[r][ci];
                if n > 0 {
                    reg.inc_counter_labeled(
                        "rds_serve_rejected_total",
                        &[("class", class.name()), ("reason", reason.name())],
                        n,
                    );
                }
            }
        }
        reg.set_help(
            "rds_slo_latency_burn_milli",
            "Latency error-budget burn rate x1000 (1000 = burning exactly the budget)",
        );
        reg.set_help(
            "rds_slo_availability_burn_milli",
            "Availability error-budget burn rate x1000",
        );
        for (ci, class) in PriorityClass::ALL.iter().enumerate() {
            let c = &self.slo.classes[ci];
            if !c.enabled {
                continue;
            }
            let l = [("class", class.name())];
            reg.inc_counter_labeled("rds_slo_latency_events_total", &l, c.latency_events);
            reg.inc_counter_labeled("rds_slo_latency_violations_total", &l, c.latency_violations);
            reg.inc_counter_labeled(
                "rds_slo_availability_events_total",
                &l,
                c.availability_events,
            );
            reg.inc_counter_labeled(
                "rds_slo_availability_violations_total",
                &l,
                c.availability_violations,
            );
            for (window, lat, avail) in [
                (
                    "fast",
                    c.latency_burn_fast_milli,
                    c.availability_burn_fast_milli,
                ),
                (
                    "slow",
                    c.latency_burn_slow_milli,
                    c.availability_burn_slow_milli,
                ),
            ] {
                let lw = [("class", class.name()), ("window", window)];
                reg.set_gauge_labeled("rds_slo_latency_burn_milli", &lw, lat as i64);
                reg.set_gauge_labeled("rds_slo_availability_burn_milli", &lw, avail as i64);
            }
        }
        reg.inc_counter("rds_flight_retained_total", self.recorder.retained);
        reg.inc_counter("rds_flight_evicted_total", self.recorder.evicted);
        reg.inc_counter("rds_flight_recycled_total", self.recorder.recycled);
        reg.inc_counter(
            "rds_flight_dropped_phases_total",
            self.recorder.dropped_phases,
        );
        reg.inc_counter(
            "rds_flight_allocation_events_total",
            self.recorder.allocation_events,
        );
        for class in PriorityClass::ALL {
            let c = &self.classes[class as usize];
            reg.inc_counter(
                &format!("rds_serve_{}_completed_total", class.name()),
                c.completed,
            );
            reg.inc_counter(
                &format!("rds_serve_{}_deadline_misses_total", class.name()),
                c.deadline_misses,
            );
            *reg.histogram_mut(&format!("rds_serve_{}_queue_wait_us", class.name())) =
                c.queue_wait_us.clone();
            *reg.histogram_mut(&format!("rds_serve_{}_turnaround_us", class.name())) =
                c.turnaround_us.clone();
        }
        reg
    }
}

/// What [`Engine::serve`] returns: the closure's output, the run's
/// stats, and any responses the closure never claimed.
#[derive(Debug)]
#[non_exhaustive]
pub struct ServeReport<R> {
    /// The serve closure's return value.
    pub output: R,
    /// Everything the run measured.
    pub stats: ServeStats,
    /// Responses produced but not claimed via [`ServeHandle::recv`],
    /// in completion order. Together with the claimed ones, every
    /// admitted ticket appears exactly once.
    pub unclaimed: Vec<ServeResponse>,
}

/// What one worker reports back from its serving loop.
#[derive(Default)]
struct WorkerTally {
    shard: ShardTally,
    classes: [ClassServeStats; PriorityClass::COUNT],
    completed: u64,
    errors: u64,
    panics: u64,
    deadline_misses: u64,
    solve_stats: SolveStats,
    /// Per-class SLO burn tracker (merged after the run; a dead worker's
    /// default tracker merges as a no-op).
    slo: SloTrackerSet,
}

impl<'a, A: ReplicaSource + Sync, S: RetrievalSolver + Sync> Engine<'a, A, S> {
    /// Runs the online serving loop: one worker per shard drains a
    /// bounded queue while `f` runs on the calling thread with a
    /// [`ServeHandle`] to submit requests and claim responses. When `f`
    /// returns, admission closes, the workers drain everything already
    /// admitted, and the run's [`ServeStats`] (plus any unclaimed
    /// responses) are returned — every admitted ticket resolves exactly
    /// once, even across solver panics.
    ///
    /// ```
    /// use rds_core::engine::Engine;
    /// use rds_core::pr::PushRelabelBinary;
    /// use rds_core::serve::{QueryRequest, ServeConfig};
    /// use rds_decluster::orthogonal::OrthogonalAllocation;
    /// use rds_decluster::query::{Query, RangeQuery};
    /// use rds_storage::experiments::paper_example;
    ///
    /// let system = paper_example();
    /// let alloc = OrthogonalAllocation::paper_7x7();
    /// let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
    /// let report = engine.serve(ServeConfig::default(), |handle| {
    ///     let buckets = RangeQuery::new(0, 0, 2, 3).buckets(7);
    ///     handle.submit(QueryRequest::new(0, buckets)).unwrap()
    /// });
    /// assert_eq!(report.stats.admitted, 1);
    /// assert_eq!(report.stats.completed, 1);
    /// let response = &report.unclaimed[0];
    /// assert_eq!(response.ticket, report.output);
    /// assert!(response.result.is_ok());
    /// ```
    pub fn serve<R>(
        &mut self,
        config: ServeConfig,
        f: impl FnOnce(&ServeHandle) -> R,
    ) -> ServeReport<R> {
        let started = Instant::now();
        let num_shards = self.shards.len();
        let shared = Arc::new(Shared {
            queues: (0..num_shards).map(|_| ShardQueue::new()).collect(),
            clock: ClockState::new(config.clock),
            capacity: config.queue_capacity,
            shed_watermark: config.shed_watermark,
            record_spans: config.record_spans,
            counters: AdmissionCounters::default(),
            tickets: AtomicU64::new(0),
            slo: self.slo,
            // The engine's rejection recorder moves into the run (so its
            // configuration and already-retained spans carry over) and is
            // restored in the epilogue below.
            rejlog: Mutex::new((
                std::mem::take(&mut self.rejections),
                SloTrackerSet::new(self.slo),
            )),
        });
        let (tx, rx) = mpsc::channel();
        let handle = ServeHandle {
            shared: Arc::clone(&shared),
            responses: Mutex::new(rx),
        };
        let ctx = BatchCtx {
            system: self.system,
            alloc: self.alloc,
            solver: &self.solver,
            faults: FaultConfig {
                injector: self.injector.as_ref(),
                retry: self.retry,
                degraded: self.degraded,
            },
            reuse: self.reuse,
            objective: self.objective,
        };
        let base_budget = self.budget;
        // Fused drains need the shared pool; with `batch_fuse` off (or no
        // pool) every drain takes the serial path.
        let fuse = if self.batch_fuse {
            self.pool.clone().map(|pool| FuseCtx {
                pool,
                layout: self.lane_layout,
            })
        } else {
            None
        };

        let (output, tallies) = std::thread::scope(|scope| {
            let ctx = &ctx;
            let config = &config;
            let shared_ref = &*shared;
            let fuse = fuse.as_ref();
            let workers: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(shard_idx, shard)| {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        serve_worker(
                            shard_idx,
                            shard,
                            ctx,
                            shared_ref,
                            config,
                            base_budget,
                            fuse,
                            tx,
                        )
                    })
                })
                .collect();
            drop(tx);
            let output = f(&handle);
            handle.shutdown();
            let tallies: Vec<WorkerTally> = workers
                .into_iter()
                .map(|w| w.join().unwrap_or_default())
                .collect();
            (output, tallies)
        });

        // Every sender is gone, so this drains exactly the responses the
        // closure never claimed.
        let mut unclaimed = Vec::new();
        while let Some(r) = handle.try_recv() {
            unclaimed.push(r);
        }

        let c = &shared.counters;
        let mut stats = ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: c.rejected_deadline.load(Ordering::Relaxed),
            rejected_shed: c.rejected_shed.load(Ordering::Relaxed),
            rejected_shutdown: c.rejected_shutdown.load(Ordering::Relaxed),
            max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
            elapsed: started.elapsed(),
            ..ServeStats::default()
        };
        for (r, row) in c.rejected_by.iter().enumerate() {
            for (ci, cell) in row.iter().enumerate() {
                stats.rejected_by[r][ci] = cell.load(Ordering::Relaxed);
            }
        }
        let mut slo_all = SloTrackerSet::new(self.slo);
        for tally in &tallies {
            stats.completed += tally.completed;
            stats.errors += tally.errors;
            stats.panics += tally.panics;
            stats.deadline_misses += tally.deadline_misses;
            stats.solve_stats.accumulate(&tally.solve_stats);
            for (into, from) in stats.classes.iter_mut().zip(&tally.classes) {
                into.merge(from);
            }
            slo_all.merge(&tally.slo);
            tally.shard.accumulate(&mut self.stats, &mut self.metrics);
        }
        // Reclaim the rejection log: the recorder returns to the engine
        // (for `Engine::postmortem`), the rejection SLO tracker merges
        // into the run's report.
        {
            let (rej_recorder, rej_slo) =
                std::mem::take(&mut *shared.rejlog.lock().expect("rejection log mutex"));
            slo_all.merge(&rej_slo);
            self.rejections = rej_recorder;
        }
        stats.slo = slo_all.report();
        let mut recorder = RecorderStats::default();
        for shard in &self.shards {
            recorder.merge(&shard.recorder.stats());
        }
        recorder.merge(&self.rejections.stats());
        stats.recorder = recorder;
        self.stats.batches += 1;
        self.stats.queries += stats.completed;
        self.stats.errors += stats.errors;
        self.stats.elapsed += stats.elapsed;
        self.stats.solve_stats.accumulate(&stats.solve_stats);
        self.stats.workspace_solves = self.shards.iter().map(|s| s.workspace.solves()).sum();
        let mut reuse = crate::session::ReuseCounters::default();
        for shard in &self.shards {
            for state in shard.states.values() {
                reuse.merge(&state.reuse_counters());
            }
        }
        self.stats.reuse = reuse;
        // Per-query deadline budgets may have re-armed workspaces;
        // restore the engine-wide budget for subsequent batch runs.
        for shard in &mut self.shards {
            shard.workspace.arm_budget(self.budget);
        }

        ServeReport {
            output,
            stats,
            unclaimed,
        }
    }
}

/// What a fused serve drain needs beyond the serial path: the shared
/// worker pool and the lane arena layout.
struct FuseCtx {
    pool: WorkerPool,
    layout: ArenaLayout,
}

/// One shard's serving loop: wait for work, drain a batch FIFO (same-
/// stream runs hit the warm/delta path), resolve every item exactly once.
#[allow(clippy::too_many_arguments)]
fn serve_worker<A: ReplicaSource + ?Sized + Sync, S: RetrievalSolver + ?Sized + Sync>(
    shard_idx: usize,
    shard: &mut crate::engine::Shard,
    ctx: &BatchCtx<'_, A, S>,
    shared: &Shared,
    config: &ServeConfig,
    base_budget: SolveBudget,
    fuse: Option<&FuseCtx>,
    tx: mpsc::Sender<ServeResponse>,
) -> WorkerTally {
    let mut tally = WorkerTally {
        slo: SloTrackerSet::new(shared.slo),
        ..WorkerTally::default()
    };
    let queue = &shared.queues[shard_idx];
    let mut batch: Vec<Admitted> = Vec::new();
    loop {
        {
            let mut st = queue.state.lock().expect("queue mutex");
            while st.items.is_empty() {
                if !st.open {
                    return tally;
                }
                st = queue.cv.wait(st).expect("queue mutex");
            }
            // Coalescing window: give closely-spaced arrivals one chance
            // to land in the same drain, so consecutive same-stream
            // queries ride the warm-start/delta path (and fused drains
            // see wider batches).
            match (config.batch_window, shared.clock.mode) {
                (Some(window), ServeClock::Real) => {
                    if st.items.len() < config.batch_max && st.open {
                        let (back, _) = queue.cv.wait_timeout(st, window).expect("queue mutex");
                        st = back;
                    }
                }
                (Some(_), ServeClock::Virtual) => {
                    // Virtual time has no "window elapsed" signal, so the
                    // window coalesces up to the only two deterministic
                    // boundaries: the batch filling to `batch_max`, or
                    // admission closing. This makes batch composition —
                    // and therefore fused-drain digests — reproducible
                    // for any shard count.
                    while st.items.len() < config.batch_max && st.open {
                        st = queue.cv.wait(st).expect("queue mutex");
                    }
                }
                (None, _) => {}
            }
            let take = st.items.len().min(config.batch_max);
            batch.extend(st.items.drain(..take));
        }
        let batch_len = batch.len();
        let fused = match fuse {
            Some(fuse) => serve_fused(
                shard_idx,
                shard,
                ctx,
                shared,
                base_budget,
                &mut batch,
                fuse,
                &tx,
                &mut tally,
            ),
            None => false,
        };
        if !fused {
            for item in batch.drain(..) {
                serve_one(
                    shard_idx,
                    shard,
                    ctx,
                    shared,
                    base_budget,
                    item,
                    batch_len,
                    &tx,
                    &mut tally,
                );
            }
        }
    }
}

/// One fused-drain item after the serial prepare stage: its admission
/// record plus the per-query budget, queue-wait reading and armed span
/// shell, ready to execute on a lane.
struct FusedPrep {
    pos: usize,
    item: Admitted,
    budget: SolveBudget,
    queued: Micros,
    span: Option<QuerySpan>,
}

/// What a lane task reports back per item for the serial finish stage.
struct FusedDone {
    pos: usize,
    ticket: Ticket,
    stream: usize,
    class: PriorityClass,
    deadline: Option<Micros>,
    arrival: Micros,
    enqueued: Instant,
    queued: Micros,
    result: Result<SessionOutcome, ServeError>,
    panicked: bool,
    solve_us: u64,
    span: Option<QuerySpan>,
}

/// Drains one coalesced batch through the fused path: a serial prepare
/// stage (span shells from the shard recorder, deadline-aware budgets),
/// parallel per-stream-group execution on checked-out lanes across the
/// shared pool, and a serial finish stage in original drain order
/// (retire spans, SLO accounting, responses). Results are bit-identical
/// to the serial drain; only wall-clock and plane residency change.
///
/// Returns `false` — leaving the batch untouched — when fewer than two
/// stream groups exist, so the caller falls back to the serial loop.
#[allow(clippy::too_many_arguments)]
fn serve_fused<A: ReplicaSource + ?Sized + Sync, S: RetrievalSolver + ?Sized + Sync>(
    shard_idx: usize,
    shard: &mut crate::engine::Shard,
    ctx: &BatchCtx<'_, A, S>,
    shared: &Shared,
    base_budget: SolveBudget,
    batch: &mut Vec<Admitted>,
    fuse: &FuseCtx,
    tx: &mpsc::Sender<ServeResponse>,
    tally: &mut WorkerTally,
) -> bool {
    // Group item positions by stream: discovery order across groups,
    // drain order within one (same-stream requests are load-coupled
    // through the session clock, so only distinct streams run
    // concurrently).
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    for (pos, item) in batch.iter().enumerate() {
        let stream = item.req.stream;
        let g = *group_of.entry(stream).or_insert_with(|| {
            groups.push((stream, Vec::new()));
            groups.len() - 1
        });
        groups[g].1.push(pos);
    }
    if groups.len() < 2 {
        return false;
    }

    let batch_len = batch.len();
    tally.shard.fused_batches += 1;
    tally.shard.fused_queries += batch_len as u64;
    let real = shared.clock.mode == ServeClock::Real;

    // Serial prepare, drain order: spans and budgets exactly as
    // `serve_one` would set them up.
    let mut preps: Vec<Option<FusedPrep>> = Vec::with_capacity(batch_len);
    for (pos, item) in batch.drain(..).enumerate() {
        let queued = if real {
            Micros::from_micros(item.enqueued.elapsed().as_micros() as u64)
        } else {
            Micros::ZERO
        };
        let span = if shared.record_spans {
            let mut span = shard.recorder.checkout();
            span.id = SpanId(item.ticket.0);
            span.stream = item.req.stream;
            span.shard = shard_idx;
            span.class = item.req.class as usize;
            span.arrival = item.req.arrival;
            span.queued_us = queued.as_micros();
            span.record(
                PhaseKind::Admitted,
                0,
                item.req.arrival.as_micros(),
                item.req.class as u64,
            );
            span.record(
                PhaseKind::Coalesced,
                0,
                batch_len as u64,
                queued.as_micros(),
            );
            Some(span)
        } else {
            None
        };
        let mut budget = base_budget;
        if real {
            if let Some(d) = item.req.deadline {
                let remaining =
                    Duration::from_micros(d.saturating_sub(shared.clock.now()).as_micros());
                budget.wall_clock = Some(budget.wall_clock.map_or(remaining, |b| b.min(remaining)));
            }
        }
        preps.push(Some(FusedPrep {
            pos,
            item,
            budget,
            queued,
            span,
        }));
    }

    // Check out one lane and the owning stream state per group.
    shard.ensure_lanes(groups.len(), fuse.layout, base_budget);
    let mut lane_states: Vec<Option<SessionState>> = groups
        .iter()
        .map(|(stream, _)| shard.states.remove(stream))
        .collect();
    let mut lane_tallies: Vec<ShardTally> = groups.iter().map(|_| ShardTally::default()).collect();
    let mut lane_dones: Vec<Vec<FusedDone>> = groups
        .iter()
        .map(|(_, g)| Vec::with_capacity(g.len()))
        .collect();
    let lane_preps: Vec<Vec<FusedPrep>> = groups
        .iter()
        .map(|(_, g)| {
            g.iter()
                .map(|&pos| preps[pos].take().expect("each position in one group"))
                .collect()
        })
        .collect();

    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = shard.lanes[..groups.len()]
            .iter_mut()
            .zip(lane_states.iter_mut())
            .zip(lane_tallies.iter_mut())
            .zip(lane_preps)
            .zip(lane_dones.iter_mut())
            .map(|((((lane, state), lane_tally), preps), dones)| {
                Box::new(move || {
                    serve_lane(
                        shard_idx, ctx, shared, lane, state, lane_tally, preps, dones,
                    )
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        fuse.pool.run_tasks(tasks);
    }

    // Deterministic merge in group order, then serial finish in the
    // original drain order.
    for ((stream, _), state) in groups.iter().zip(lane_states) {
        if let Some(state) = state {
            shard.states.insert(*stream, state);
        }
    }
    for lane_tally in &lane_tallies {
        tally.shard.merge(lane_tally);
    }
    shard.absorb_lane_traces(groups.len());

    let mut dones: Vec<Option<FusedDone>> = (0..batch_len).map(|_| None).collect();
    for lane in lane_dones {
        for done in lane {
            let pos = done.pos;
            dones[pos] = Some(done);
        }
    }
    for done in dones {
        let done = done.expect("every item ran on exactly one lane");
        finish_fused(shard, shared, done, tx, tally);
    }
    true
}

/// Executes one stream group serially on its lane: arm the span and
/// budget, solve under panic containment, disarm the span — the fused
/// counterpart of `serve_one`'s middle section.
#[allow(clippy::too_many_arguments)]
fn serve_lane<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
    shard_idx: usize,
    ctx: &BatchCtx<'_, A, S>,
    shared: &Shared,
    lane: &mut FusedLane,
    state: &mut Option<SessionState>,
    tally: &mut ShardTally,
    preps: Vec<FusedPrep>,
    dones: &mut Vec<FusedDone>,
) {
    let real = shared.clock.mode == ServeClock::Real;
    for prep in preps {
        let FusedPrep {
            pos,
            item,
            budget,
            queued,
            span,
        } = prep;
        let Admitted {
            ticket,
            req,
            enqueued,
        } = item;
        let stream = req.stream;
        let class = req.class;
        let deadline = req.deadline;
        let arrival = req.arrival;
        if let Some(span) = span {
            lane.workspace.tracer.arm_span(span);
        }
        lane.workspace.arm_budget(budget);
        let q = BatchQuery {
            stream,
            arrival,
            buckets: req.buckets,
        };
        let st = state.get_or_insert_with(|| new_stream_state(ctx));
        let started = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if real {
                let clock = RealProbeClock {
                    clock: &shared.clock,
                    deadline,
                };
                run_one_core(
                    ctx,
                    &q,
                    st,
                    &mut lane.workspace,
                    &mut lane.health,
                    &clock,
                    tally,
                )
            } else {
                run_one_core(
                    ctx,
                    &q,
                    st,
                    &mut lane.workspace,
                    &mut lane.health,
                    &ArrivalClock,
                    tally,
                )
            }
        }));
        let solve_us = started.elapsed().as_micros() as u64;
        tally.metrics.solve_latency_us.record(solve_us);
        let (result, panicked) = match caught {
            Ok(r) => (r.map_err(ServeError::from), false),
            Err(_) => {
                // Same containment as the serial path: the poisoned
                // stream restarts fresh, the lane workspace is reclaimed,
                // batchmates proceed.
                *state = None;
                let _ = lane.workspace.take_poisoned();
                (
                    Err(ServeError::Engine(EngineError::ShardFailed {
                        shard: shard_idx,
                    })),
                    true,
                )
            }
        };
        let span = lane.workspace.tracer.disarm_span();
        dones.push(FusedDone {
            pos,
            ticket,
            stream,
            class,
            deadline,
            arrival,
            enqueued,
            queued,
            result,
            panicked,
            solve_us,
            span,
        });
    }
}

/// The serial finish stage of one fused item, in original drain order:
/// outcome stamping, span retirement, SLO and stats accounting, and the
/// exactly-once response — `serve_one`'s tail.
fn finish_fused(
    shard: &mut crate::engine::Shard,
    shared: &Shared,
    done: FusedDone,
    tx: &mpsc::Sender<ServeResponse>,
    tally: &mut WorkerTally,
) {
    let FusedDone {
        pos: _,
        ticket,
        stream,
        class,
        deadline,
        arrival,
        enqueued,
        queued,
        result,
        panicked,
        solve_us,
        span,
    } = done;
    let real = shared.clock.mode == ServeClock::Real;
    if panicked {
        tally.panics += 1;
        tally.shard.shard_failures += 1;
    }
    let deadline_missed = match (&result, deadline) {
        (Ok(out), Some(d)) => {
            if real {
                shared.clock.now() > d
            } else {
                out.completion > d
            }
        }
        _ => false,
    };
    let turnaround = if real {
        Micros::from_micros(enqueued.elapsed().as_micros() as u64)
    } else if let Ok(out) = &result {
        out.completion.saturating_sub(out.arrival)
    } else {
        Micros::ZERO
    };
    let completion = match &result {
        Ok(out) => out.completion,
        Err(_) if real => shared.clock.now(),
        Err(_) => arrival,
    };
    if shared.record_spans {
        let mut span = span.unwrap_or_default();
        span.turnaround_us = turnaround.as_micros();
        span.deadline_missed = deadline_missed;
        span.completion = completion;
        match &result {
            Ok(_) => {
                span.outcome = SpanOutcome::Resolved;
                span.record(PhaseKind::Reply, solve_us, deadline_missed as u64, 0);
            }
            Err(_) => {
                span.outcome = SpanOutcome::Failed;
                span.record(PhaseKind::Failed, solve_us, 0, 0);
            }
        }
        shard.recorder.retire(span);
    }
    let slo_now = if real { shared.clock.now() } else { completion };
    match &result {
        Ok(_) => tally.slo.record_response(class, slo_now, turnaround),
        Err(_) => tally.slo.record_unavailable(class, slo_now),
    }
    let cs = &mut tally.classes[class as usize];
    cs.completed += 1;
    cs.queue_wait_us.record(queued.as_micros());
    cs.turnaround_us.record(turnaround.as_micros());
    if deadline_missed {
        cs.deadline_misses += 1;
        tally.deadline_misses += 1;
    }
    tally.completed += 1;
    match &result {
        Ok(out) => {
            tally.solve_stats.accumulate(&out.outcome.stats);
            tally
                .shard
                .metrics
                .probes_per_solve
                .record(out.outcome.stats.probes);
            tally
                .shard
                .metrics
                .turnaround_us
                .record((out.completion - out.arrival).as_micros());
        }
        Err(_) => tally.errors += 1,
    }
    // The receiver lives in the ServeHandle, which outlives the scope, so
    // a send failure is unreachable; ignoring it keeps drain unstoppable.
    let _ = tx.send(ServeResponse {
        ticket,
        stream,
        class,
        result,
        queued,
        deadline_missed,
    });
}

/// Resolves one admitted request: arm the deadline-aware budget, solve
/// under panic containment, respond exactly once.
#[allow(clippy::too_many_arguments)]
fn serve_one<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
    shard_idx: usize,
    shard: &mut crate::engine::Shard,
    ctx: &BatchCtx<'_, A, S>,
    shared: &Shared,
    base_budget: SolveBudget,
    item: Admitted,
    batch_len: usize,
    tx: &mpsc::Sender<ServeResponse>,
    tally: &mut WorkerTally,
) {
    let Admitted {
        ticket,
        req,
        enqueued,
    } = item;
    let class = req.class;
    let stream = req.stream;
    let deadline = req.deadline;
    let real = shared.clock.mode == ServeClock::Real;
    let queued = if real {
        Micros::from_micros(enqueued.elapsed().as_micros() as u64)
    } else {
        Micros::ZERO
    };

    // Begin this request's query span: a recycled shell from the shard's
    // flight recorder, armed on the workspace tracer so the solve's
    // bridged trace events (probes, cache hits, delta patches, budget
    // expiry, …) land on its phase timeline.
    if shared.record_spans {
        let mut span = shard.recorder.checkout();
        span.id = SpanId(ticket.0);
        span.stream = stream;
        span.shard = shard_idx;
        span.class = class as usize;
        span.arrival = req.arrival;
        span.queued_us = queued.as_micros();
        span.record(
            PhaseKind::Admitted,
            0,
            req.arrival.as_micros(),
            class as u64,
        );
        span.record(
            PhaseKind::Coalesced,
            0,
            batch_len as u64,
            queued.as_micros(),
        );
        shard.workspace.tracer.arm_span(span);
    }

    // Deadline-aware anytime budget: on the real clock, the solve may use
    // at most the time remaining until the SLA deadline (on top of any
    // engine-wide budget). Virtual time keeps the engine budget untouched
    // so results stay deterministic.
    let mut budget = base_budget;
    if real {
        if let Some(d) = deadline {
            let remaining = Duration::from_micros(d.saturating_sub(shared.clock.now()).as_micros());
            budget.wall_clock = Some(budget.wall_clock.map_or(remaining, |b| b.min(remaining)));
        }
    }
    shard.workspace.arm_budget(budget);

    let q = BatchQuery {
        stream,
        arrival: req.arrival,
        buckets: req.buckets,
    };
    let started = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if real {
            let clock = RealProbeClock {
                clock: &shared.clock,
                deadline,
            };
            shard.run_one(ctx, &q, &clock, &mut tally.shard)
        } else {
            shard.run_one(ctx, &q, &ArrivalClock, &mut tally.shard)
        }
    }));
    tally
        .shard
        .metrics
        .solve_latency_us
        .record(started.elapsed().as_micros() as u64);

    let result: Result<SessionOutcome, ServeError> = match caught {
        Ok(r) => r.map_err(ServeError::from),
        Err(_) => {
            // Same containment as batch mode: the poisoned stream's state
            // restarts, the response is a typed failure, the loop lives.
            shard.states.remove(&stream);
            let _ = shard.workspace.take_poisoned();
            tally.panics += 1;
            tally.shard.shard_failures += 1;
            Err(ServeError::Engine(EngineError::ShardFailed {
                shard: shard_idx,
            }))
        }
    };

    let deadline_missed = match (&result, deadline) {
        (Ok(out), Some(d)) => {
            if real {
                shared.clock.now() > d
            } else {
                out.completion > d
            }
        }
        _ => false,
    };

    let turnaround = if real {
        Micros::from_micros(enqueued.elapsed().as_micros() as u64)
    } else if let Ok(out) = &result {
        out.completion.saturating_sub(out.arrival)
    } else {
        Micros::ZERO
    };

    // Finish the span: take it back off the tracer, stamp the outcome and
    // the reply phase, then hand it to the flight recorder, which decides
    // retention (triggered spans always kept, healthy ones head-sampled).
    let completion = match &result {
        Ok(out) => out.completion,
        Err(_) if real => shared.clock.now(),
        Err(_) => req.arrival,
    };
    if shared.record_spans {
        let mut span = shard.workspace.tracer.disarm_span().unwrap_or_default();
        let finished_us = started.elapsed().as_micros() as u64;
        span.turnaround_us = turnaround.as_micros();
        span.deadline_missed = deadline_missed;
        span.completion = completion;
        match &result {
            Ok(_) => {
                span.outcome = SpanOutcome::Resolved;
                span.record(PhaseKind::Reply, finished_us, deadline_missed as u64, 0);
            }
            Err(_) => {
                span.outcome = SpanOutcome::Failed;
                span.record(PhaseKind::Failed, finished_us, 0, 0);
            }
        }
        shard.recorder.retire(span);
    }
    let slo_now = if real { shared.clock.now() } else { completion };
    match &result {
        Ok(_) => tally.slo.record_response(class, slo_now, turnaround),
        Err(_) => tally.slo.record_unavailable(class, slo_now),
    }

    let cs = &mut tally.classes[class as usize];
    cs.completed += 1;
    cs.queue_wait_us.record(queued.as_micros());
    cs.turnaround_us.record(turnaround.as_micros());
    if deadline_missed {
        cs.deadline_misses += 1;
        tally.deadline_misses += 1;
    }
    tally.completed += 1;
    match &result {
        Ok(out) => {
            tally.solve_stats.accumulate(&out.outcome.stats);
            tally
                .shard
                .metrics
                .probes_per_solve
                .record(out.outcome.stats.probes);
            tally
                .shard
                .metrics
                .turnaround_us
                .record((out.completion - out.arrival).as_micros());
        }
        Err(_) => tally.errors += 1,
    }

    // The receiver lives in the ServeHandle, which outlives the scope, so
    // a send failure is unreachable; ignoring it keeps drain unstoppable.
    let _ = tx.send(ServeResponse {
        ticket,
        stream,
        class,
        result,
        queued,
        deadline_missed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RetryPolicy;
    use crate::fault::{DiskHealth, FaultInjector};
    use crate::pr::PushRelabelBinary;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::CHEETAH;
    use std::collections::HashSet;

    fn setup() -> (SystemConfig, OrthogonalAllocation) {
        (
            SystemConfig::homogeneous(CHEETAH, 5),
            OrthogonalAllocation::new(5, Placement::SingleSite),
        )
    }

    #[test]
    fn every_admitted_ticket_resolves_exactly_once() {
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            let mut tickets = HashSet::new();
            for k in 0..20u64 {
                let q = RangeQuery::new((k % 5) as usize, 0, 1, 2).buckets(5);
                let req = QueryRequest::new((k % 4) as usize, q)
                    .arriving_at(Micros::from_millis(k / 4 * 2));
                tickets.insert(h.submit(req).unwrap());
            }
            tickets
        });
        assert_eq!(report.stats.admitted, 20);
        assert_eq!(report.stats.completed, 20);
        assert_eq!(report.stats.errors, 0);
        let resolved: HashSet<Ticket> = report.unclaimed.iter().map(|r| r.ticket).collect();
        assert_eq!(resolved, report.output);
        assert_eq!(report.unclaimed.len(), 20, "no duplicate resolutions");
    }

    #[test]
    fn virtual_serving_matches_submit_batch() {
        let (system, alloc) = setup();
        let queries: Vec<BatchQuery> = (0..12)
            .map(|k| BatchQuery {
                stream: k % 3,
                arrival: Micros::from_millis((k / 3) as u64 * 2),
                buckets: RangeQuery::new(k % 5, (k + 1) % 5, 1 + k % 2, 2).buckets(5),
            })
            .collect();
        let mut batch_engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let want: Vec<Micros> = batch_engine
            .submit_batch(&queries)
            .into_iter()
            .map(|r| r.unwrap().outcome.response_time)
            .collect();
        for shards in [1usize, 2, 4] {
            let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards);
            let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
                queries
                    .iter()
                    .map(|q| {
                        h.submit(
                            QueryRequest::new(q.stream, q.buckets.clone()).arriving_at(q.arrival),
                        )
                        .unwrap()
                    })
                    .collect::<Vec<_>>()
            });
            let mut by_ticket: Vec<(Ticket, Micros)> = report
                .unclaimed
                .iter()
                .map(|r| (r.ticket, r.result.as_ref().unwrap().outcome.response_time))
                .collect();
            by_ticket.sort();
            let got: Vec<Micros> = by_ticket.into_iter().map(|(_, t)| t).collect();
            assert_eq!(got, want, "{shards} shards");
        }
    }

    #[test]
    fn queue_full_and_shutdown_rejections_are_typed() {
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let buckets = RangeQuery::new(0, 0, 1, 1).buckets(5);
        // Submit from a producer thread while the single worker is held
        // idle only by queue pressure — capacity 1 forces QueueFull once
        // at least one item is waiting. To make it deterministic, close
        // admission first and observe ShuttingDown.
        let report = engine.serve(
            ServeConfig::default().virtual_time().queue_capacity(1),
            |h| {
                h.shutdown();
                let err = h.submit(QueryRequest::new(0, buckets.clone())).unwrap_err();
                assert_eq!(err, Rejected::ShuttingDown);
            },
        );
        assert_eq!(report.stats.rejected_shutdown, 1);
        assert_eq!(report.stats.admitted, 0);
        assert_eq!(report.stats.completed, 0);
    }

    #[test]
    fn past_deadline_rejected_at_admission() {
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let buckets = RangeQuery::new(0, 0, 1, 1).buckets(5);
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            let err = h
                .submit(
                    QueryRequest::new(0, buckets.clone())
                        .arriving_at(Micros::from_millis(10))
                        .deadline(Micros::from_millis(5)),
                )
                .unwrap_err();
            assert_eq!(
                err,
                Rejected::DeadlineUnmeetable {
                    deadline: Micros::from_millis(5),
                    now: Micros::from_millis(10),
                }
            );
        });
        assert_eq!(report.stats.rejected_deadline, 1);
    }

    #[test]
    fn batch_class_is_shed_above_the_watermark() {
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let buckets = RangeQuery::new(0, 0, 1, 1).buckets(5);
        // Watermark 0: every Batch request sheds, other classes sail.
        let report = engine.serve(
            ServeConfig::default().virtual_time().shed_watermark(0),
            |h| {
                let shed = h
                    .submit(QueryRequest::new(0, buckets.clone()).class(PriorityClass::Batch))
                    .unwrap_err();
                assert!(matches!(shed, Rejected::ShedLowPriority { .. }));
                h.submit(QueryRequest::new(0, buckets.clone()).class(PriorityClass::Interactive))
                    .unwrap();
            },
        );
        assert_eq!(report.stats.rejected_shed, 1);
        assert_eq!(report.stats.completed, 1);
        let interactive = &report.stats.classes[PriorityClass::Interactive as usize];
        assert_eq!(interactive.completed, 1);
    }

    #[test]
    fn coalesced_same_stream_requests_hit_the_delta_path() {
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1).with_reuse(
            crate::session::ReusePolicy {
                warm_start: true,
                cache_capacity: 0,
            },
        );
        let q1 = RangeQuery::new(0, 0, 2, 3).buckets(5);
        let q2 = RangeQuery::new(0, 1, 2, 3).buckets(5);
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            h.submit(QueryRequest::new(0, q1.clone())).unwrap();
            h.submit(QueryRequest::new(0, q2.clone()).arriving_at(Micros::from_millis(40)))
                .unwrap();
        });
        assert_eq!(report.stats.completed, 2);
        assert!(
            engine.stats().reuse.delta_patches >= 1,
            "same-stream coalescing should warm-start"
        );
    }

    #[test]
    fn deadline_budget_forces_anytime_but_stays_feasible() {
        let (system, alloc) = setup();
        // Probe budget 0 through the engine: every solve bails to its
        // feasible upper bound immediately.
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2)
            .with_budget(SolveBudget::default().with_max_probes(0));
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            for s in 0..4usize {
                let q = RangeQuery::new(s, 0, 2, 3).buckets(5);
                h.submit(QueryRequest::new(s, q)).unwrap();
            }
        });
        assert_eq!(report.stats.completed, 4);
        assert_eq!(report.stats.errors, 0);
        assert_eq!(report.stats.solve_stats.budget_expirations, 4);
        for r in &report.unclaimed {
            let out = r.result.as_ref().unwrap();
            assert_eq!(out.outcome.flow_value as usize, 6);
        }
    }

    #[test]
    fn panicking_solver_resolves_with_typed_failure() {
        #[derive(Clone, Copy)]
        struct AlwaysPanics;
        impl RetrievalSolver for AlwaysPanics {
            fn name(&self) -> &'static str {
                "always-panics"
            }
            fn solve_in(
                &self,
                _inst: &crate::network::RetrievalInstance,
                _ws: &mut crate::workspace::Workspace,
            ) -> Result<crate::schedule::RetrievalOutcome, crate::error::SolveError> {
                panic!("injected bug");
            }
        }
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, AlwaysPanics, 1);
        let buckets = RangeQuery::new(0, 0, 1, 1).buckets(5);
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            h.submit(QueryRequest::new(0, buckets.clone())).unwrap()
        });
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.panics, 1);
        assert_eq!(
            report.unclaimed[0].result.as_ref().unwrap_err(),
            &ServeError::Engine(EngineError::ShardFailed { shard: 0 })
        );
    }

    #[test]
    fn real_clock_sees_midflight_recovery() {
        let (system, alloc) = setup();
        let buckets = RangeQuery::new(0, 1, 1, 1).buckets(5);
        let replicas: Vec<usize> = alloc.replicas(buckets[0]).iter().collect();
        // Every replica is down from t=0 and recovers at t=5ms real time.
        // The batch engine (simulated probes at arrival+backoff) with a
        // 1ms backoff x3 would give up at 3ms; the serving loop's real
        // clock keeps probing wall time and sees the recovery.
        let mut injector = FaultInjector::new();
        for &d in &replicas {
            injector.schedule(Micros::ZERO, d, DiskHealth::Offline);
            injector.schedule(Micros::from_millis(5), d, DiskHealth::Healthy);
        }
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1)
            .with_fault_injector(injector)
            .with_retry_policy(RetryPolicy {
                max_retries: 30,
                backoff: Micros::from_millis(1),
            });
        let report = engine.serve(ServeConfig::default(), |h| {
            h.submit(QueryRequest::new(0, buckets.clone())).unwrap()
        });
        assert_eq!(report.stats.completed, 1);
        assert!(
            report.unclaimed[0].result.is_ok(),
            "real-clock replanning should observe the recovery: {:?}",
            report.unclaimed[0].result
        );
        assert!(engine.stats().retries >= 1);
    }

    #[test]
    fn serve_metrics_registry_has_admission_counters() {
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let buckets = RangeQuery::new(0, 0, 1, 2).buckets(5);
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            h.submit(QueryRequest::new(0, buckets.clone())).unwrap();
        });
        let reg = report.stats.to_registry();
        assert_eq!(reg.counter("rds_serve_admitted_total"), Some(1));
        assert_eq!(reg.counter("rds_serve_completed_total"), Some(1));
        assert_eq!(reg.gauge("rds_serve_max_queue_depth"), Some(1));
        let text = reg.to_prometheus();
        assert!(text.contains("rds_serve_standard_turnaround_us"));
    }

    #[test]
    fn span_timelines_are_shard_count_invariant() {
        let (system, alloc) = setup();
        let queries: Vec<BatchQuery> = (0..24)
            .map(|k| BatchQuery {
                stream: k % 6,
                arrival: Micros::from_millis((k / 6) as u64 * 3),
                buckets: RangeQuery::new(k % 5, (k + 1) % 5, 1 + k % 2, 2).buckets(5),
            })
            .collect();
        let mut want: Option<std::collections::BTreeMap<u64, u64>> = None;
        for shards in [1usize, 2, 4] {
            let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards);
            engine.serve(ServeConfig::default().virtual_time(), |h| {
                for q in &queries {
                    h.submit(QueryRequest::new(q.stream, q.buckets.clone()).arriving_at(q.arrival))
                        .unwrap();
                }
            });
            let pm = engine.postmortem();
            assert_eq!(pm.spans.len(), 24, "{shards} shards retain every span");
            let digests: std::collections::BTreeMap<u64, u64> = pm
                .spans
                .iter()
                .map(|s| (s.id.0, s.phase_digest()))
                .collect();
            assert_eq!(digests.len(), 24, "{shards} shards: one span per ticket");
            match &want {
                None => want = Some(digests),
                Some(w) => assert_eq!(&digests, w, "{shards} shards"),
            }
        }
    }

    #[test]
    fn fused_serving_matches_serial_across_shard_counts() {
        use crate::spec::{SolverKind, SolverSpec};
        let (system, alloc) = setup();
        let queries: Vec<BatchQuery> = (0..24)
            .map(|k| BatchQuery {
                stream: k % 6,
                arrival: Micros::from_millis((k / 6) as u64 * 3),
                buckets: RangeQuery::new(k % 5, (k + 1) % 5, 1 + k % 2, 2).buckets(5),
            })
            .collect();
        let spec = SolverSpec::new(SolverKind::PushRelabelBinary)
            .reuse(crate::session::ReusePolicy::warm());
        let config = || {
            ServeConfig::default()
                .virtual_time()
                .batch_window(Duration::from_millis(5))
                .batch_max(8)
        };
        // The serial single-shard run pins the goldens: per-ticket
        // schedules and span digests. Every fused shard count must
        // reproduce both bit-for-bit.
        type Golden = (Vec<(Ticket, Micros)>, std::collections::BTreeMap<u64, u64>);
        let mut want: Option<Golden> = None;
        for (fuse, shards) in [(false, 1usize), (true, 1), (true, 2), (true, 4)] {
            let mut engine = Engine::builder(&system, &alloc)
                .solver_spec(if fuse {
                    spec.batch_fuse(true).parallelism(3)
                } else {
                    spec
                })
                .shards(shards)
                .build();
            let report = engine.serve(config(), |h| {
                for q in &queries {
                    h.submit(QueryRequest::new(q.stream, q.buckets.clone()).arriving_at(q.arrival))
                        .unwrap();
                }
            });
            assert_eq!(report.stats.completed, 24, "fuse={fuse} {shards} shards");
            let mut times: Vec<(Ticket, Micros)> = report
                .unclaimed
                .iter()
                .map(|r| (r.ticket, r.result.as_ref().unwrap().outcome.response_time))
                .collect();
            times.sort();
            let pm = engine.postmortem();
            let digests: std::collections::BTreeMap<u64, u64> = pm
                .spans
                .iter()
                .map(|s| (s.id.0, s.phase_digest()))
                .collect();
            assert_eq!(digests.len(), 24, "fuse={fuse} {shards} shards");
            if fuse {
                assert!(
                    engine.stats().fused_batches >= 1,
                    "{shards} shards: fused drain engaged"
                );
            }
            match &want {
                None => want = Some((times, digests)),
                Some((wt, wd)) => {
                    assert_eq!(&times, wt, "fuse={fuse} {shards} shards: schedules");
                    assert_eq!(&digests, wd, "fuse={fuse} {shards} shards: timelines");
                }
            }
        }
    }

    #[test]
    fn virtual_batch_window_coalesces_deterministically() {
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let report = engine.serve(
            ServeConfig::default()
                .virtual_time()
                .batch_window(Duration::from_millis(50))
                .batch_max(4),
            |h| {
                for k in 0..10usize {
                    let q = RangeQuery::new(k % 5, 0, 1, 2).buckets(5);
                    h.submit(
                        QueryRequest::new(k % 2, q).arriving_at(Micros::from_millis(k as u64)),
                    )
                    .unwrap();
                }
            },
        );
        assert_eq!(report.stats.completed, 10);
        // Under the virtual clock the window coalesces to deterministic
        // boundaries — the batch fills to batch_max or admission closes —
        // so 10 submissions with batch_max 4 always drain as [4, 4, 2],
        // independent of scheduler timing.
        let pm = engine.postmortem();
        let mut sizes: Vec<u64> = pm
            .spans
            .iter()
            .filter_map(|s| {
                s.phases()
                    .iter()
                    .find(|p| p.kind == PhaseKind::Coalesced)
                    .map(|p| p.a)
            })
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2, 4, 4, 4, 4, 4, 4, 4, 4]);
    }

    #[test]
    fn recorder_steady_state_is_allocation_free() {
        let (system, alloc) = setup();
        // healthy_head 0 recycles every healthy span straight back to the
        // free list, so after the first checkout per shard the recorder
        // must never allocate another shell.
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2).with_flight_recorder(
            crate::obs::recorder::FlightRecorderConfig {
                capacity: 8,
                healthy_head: 0,
                max_phases: 32,
            },
        );
        let buckets = |k: usize| RangeQuery::new(k % 5, 0, 1, 2).buckets(5);
        let r1 = engine.serve(ServeConfig::default().virtual_time(), |h| {
            for k in 0..16usize {
                h.submit(
                    QueryRequest::new(k % 4, buckets(k))
                        .arriving_at(Micros::from_millis((k / 4) as u64)),
                )
                .unwrap();
            }
        });
        assert_eq!(r1.stats.completed, 16);
        let first = r1.stats.recorder.allocation_events;
        assert_eq!(first, 2, "one span shell per busy shard");
        let r2 = engine.serve(ServeConfig::default().virtual_time(), |h| {
            for k in 0..16usize {
                h.submit(
                    QueryRequest::new(k % 4, buckets(k))
                        .arriving_at(Micros::from_millis(10 + (k / 4) as u64)),
                )
                .unwrap();
            }
        });
        assert_eq!(r2.stats.completed, 16);
        assert_eq!(
            r2.stats.recorder.allocation_events, first,
            "steady state allocates no span shells"
        );
    }

    #[test]
    fn deadline_miss_is_retrievable_via_postmortem_and_exports() {
        let (system, alloc) = setup();
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let buckets = RangeQuery::new(0, 0, 2, 3).buckets(5);
        let report = engine.serve(ServeConfig::default().virtual_time(), |h| {
            // A 1us deadline admits (it has not passed at arrival) but any
            // real schedule completes later, so the span is triggered.
            h.submit(
                QueryRequest::new(0, buckets.clone())
                    .class(PriorityClass::Interactive)
                    .deadline(Micros::from_micros(1)),
            )
            .unwrap();
            h.shutdown();
            let err = h.submit(QueryRequest::new(1, buckets.clone())).unwrap_err();
            assert_eq!(err, Rejected::ShuttingDown);
        });
        assert_eq!(report.stats.deadline_misses, 1);
        assert_eq!(
            report.stats.rejected_by[RejectReason::ShuttingDown as usize]
                [PriorityClass::Standard as usize],
            1
        );

        let pm = engine.postmortem();
        assert!(
            pm.spans
                .iter()
                .any(|s| s.deadline_missed && s.is_triggered()),
            "deadline miss must survive retention"
        );
        assert_eq!(pm.rejections.len(), 1);
        assert!(matches!(
            pm.rejections[0].outcome,
            SpanOutcome::Rejected(RejectReason::ShuttingDown)
        ));
        let trace = pm.to_chrome_trace();
        crate::obs::metrics::parse_json_value(&trace).expect("chrome trace is valid JSON");
        let statusz = pm.to_statusz();
        assert!(statusz.contains("DEADLINE-MISSED"));

        // SLO burn metrics reach both exposition formats, and the labeled
        // rejection counter round-trips.
        let reg = report.stats.to_registry();
        assert_eq!(
            reg.counter_labeled(
                "rds_serve_rejected_total",
                &[("class", "standard"), ("reason", "shutting_down")],
            ),
            Some(1)
        );
        let prom = reg.to_prometheus();
        assert!(prom.contains("rds_slo_latency_burn_milli"));
        let json = reg.to_json();
        assert!(json.contains("rds_slo_latency_burn_milli"));
        let round = MetricsRegistry::parse_prometheus(&prom).unwrap();
        assert_eq!(round, reg);
    }
}
