//! Construction of the retrieval flow network (paper Figures 3 and 4).
//!
//! For a query `Q` over a system of `N` disks, the network has
//! `|Q| + N + 2` vertices:
//!
//! ```text
//! vertex 0            source s
//! vertices 1..=|Q|    one per requested bucket
//! vertices |Q|+1..=|Q|+N   one per disk
//! vertex |Q|+N+1      sink t
//! ```
//!
//! Edges: `s → bucket_i` with capacity 1; `bucket_i → disk_j` with
//! capacity 1 for every disk `j` holding a replica of bucket `i`; and
//! `disk_j → t` whose capacity encodes the response-time budget — the only
//! capacities the retrieval algorithms mutate.

use crate::fault::HealthMap;
use rds_decluster::allocation::ReplicaSource;
use rds_decluster::query::Bucket;
use rds_flow::graph::{ArenaIndex, EdgeId, FlowGraph, VertexId};
use rds_storage::model::{Disk, SystemConfig};
use rds_storage::time::Micros;

/// A bucket whose every replica sits on a failed disk — retrieval is
/// impossible until a disk recovers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnavailableBucket {
    /// The unreachable bucket.
    pub bucket: Bucket,
}

impl std::fmt::Display for UnavailableBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bucket {} has no surviving replica", self.bucket)
    }
}

impl std::error::Error for UnavailableBucket {}

/// An immutable template of one retrieval problem: the flow network plus
/// the disk parameters needed to translate time budgets into capacities.
///
/// Solvers clone the embedded graph and mutate the clone, so one instance
/// can be solved by many algorithms (and the results compared).
#[derive(Clone, Debug)]
pub struct RetrievalInstance {
    /// The flow network with all disk-edge capacities set to 0.
    pub graph: FlowGraph,
    /// The requested buckets, in bucket-vertex order.
    pub buckets: Vec<Bucket>,
    /// Per-disk parameters (global disk index order).
    pub disks: Vec<Disk>,
    /// `disk_edges[j]` is the `disk_j → t` edge.
    pub disk_edges: Vec<EdgeId>,
    /// `bucket_edges[i]` is the `s → bucket_i` edge.
    pub bucket_edges: Vec<EdgeId>,
    /// Number of query buckets with a replica on each disk — the
    /// `in_degree` consulted by `IncrementMinCost` (Algorithm 3).
    pub replicas_per_disk: Vec<u64>,
    /// Maximum replica count of any bucket (the `c` of the complexity
    /// bounds).
    pub max_copies: usize,
    /// Replica arcs deactivated (capacity zeroed) by
    /// [`RetrievalInstance::patch_buckets`] since the last full rebuild.
    /// Dead arcs cost a little on every adjacency walk, so once they
    /// outnumber the live arcs ([`RetrievalInstance::needs_compaction`])
    /// callers should rebuild instead of patching further.
    pub dead_arcs: usize,
}

impl RetrievalInstance {
    /// Builds the retrieval network for `buckets` under `alloc` on
    /// `system`.
    ///
    /// # Panics
    ///
    /// Panics if the allocation addresses more disks than the system has,
    /// or any bucket has no replica.
    pub fn build<A: ReplicaSource + ?Sized>(
        system: &SystemConfig,
        alloc: &A,
        buckets: &[Bucket],
    ) -> RetrievalInstance {
        Self::build_with_failed_disks(system, alloc, buckets, &[])
            .expect("no disks failed, every bucket has a replica")
    }

    /// Like [`RetrievalInstance::build`], but treats the disks in `failed`
    /// as unavailable: no replica edge is created to them and their sink
    /// edge never receives capacity, so the schedule routes around them —
    /// the fault-tolerance benefit of replication the paper's introduction
    /// highlights.
    ///
    /// Returns `Err` with the first bucket whose replicas are *all* on
    /// failed disks (retrieval impossible).
    pub fn build_with_failed_disks<A: ReplicaSource + ?Sized>(
        system: &SystemConfig,
        alloc: &A,
        buckets: &[Bucket],
        failed: &[usize],
    ) -> Result<RetrievalInstance, UnavailableBucket> {
        Self::build_with_health(system, alloc, buckets, &HealthMap::with_offline(failed))
    }

    /// Builds the retrieval network under a full [`HealthMap`]: offline
    /// disks are pruned exactly like `failed` disks in
    /// [`RetrievalInstance::build_with_failed_disks`], and degraded disks
    /// enter the instance with their cost `C_j` and initial load `X_j`
    /// inflated by their load factor — every solver then transparently
    /// plans around the faults.
    ///
    /// Returns `Err` with the first bucket whose replicas are *all*
    /// offline (retrieval impossible).
    pub fn build_with_health<A: ReplicaSource + ?Sized>(
        system: &SystemConfig,
        alloc: &A,
        buckets: &[Bucket],
        health: &HealthMap,
    ) -> Result<RetrievalInstance, UnavailableBucket> {
        let q = buckets.len();
        let n = system.num_disks();
        let mut inst = RetrievalInstance {
            graph: FlowGraph::with_capacity(q + n + 2, q * 3 + n),
            buckets: Vec::new(),
            disks: Vec::new(),
            disk_edges: Vec::new(),
            bucket_edges: Vec::new(),
            replicas_per_disk: Vec::new(),
            max_copies: 0,
            dead_arcs: 0,
        };
        inst.rebuild_with_health(system, alloc, buckets, health)?;
        Ok(inst)
    }

    /// Rebuilds this instance **in place** for a new query over the same
    /// (or a different) system, reusing every buffer — the graph's
    /// adjacency lists, the bucket/edge index vectors — instead of
    /// allocating a fresh instance. This is what lets a
    /// [`crate::session::RetrievalSession`] submit thousands of queries
    /// without per-query allocation.
    ///
    /// Semantically identical to [`RetrievalInstance::build`]: afterwards
    /// the instance is indistinguishable from a freshly built one.
    ///
    /// # Panics
    ///
    /// Panics if the allocation addresses more disks than the system has,
    /// or any bucket has no replica (same contract as `build`).
    pub fn rebuild_in<A: ReplicaSource + ?Sized>(
        &mut self,
        system: &SystemConfig,
        alloc: &A,
        buckets: &[Bucket],
    ) -> Result<(), UnavailableBucket> {
        self.rebuild_with_health(system, alloc, buckets, &HealthMap::all_healthy())
    }

    /// In-place variant of [`RetrievalInstance::build_with_failed_disks`];
    /// see [`RetrievalInstance::rebuild_in`]. On `Err` the instance is left
    /// in an unspecified (but safe) state and must be rebuilt before use.
    pub fn rebuild_with_failed_disks<A: ReplicaSource + ?Sized>(
        &mut self,
        system: &SystemConfig,
        alloc: &A,
        buckets: &[Bucket],
        failed: &[usize],
    ) -> Result<(), UnavailableBucket> {
        self.rebuild_with_health(system, alloc, buckets, &HealthMap::with_offline(failed))
    }

    /// In-place variant of [`RetrievalInstance::build_with_health`]; see
    /// [`RetrievalInstance::rebuild_in`]. On `Err` the instance is left in
    /// an unspecified (but safe) state and must be rebuilt before use.
    pub fn rebuild_with_health<A: ReplicaSource + ?Sized>(
        &mut self,
        system: &SystemConfig,
        alloc: &A,
        buckets: &[Bucket],
        health: &HealthMap,
    ) -> Result<(), UnavailableBucket> {
        assert!(
            alloc.num_disks() <= system.num_disks(),
            "allocation addresses {} disks but the system has {}",
            alloc.num_disks(),
            system.num_disks()
        );
        let q = buckets.len();
        let n = system.num_disks();
        // Vertex ids are implicit: 0 = source, 1..=q buckets, q+1..=q+n
        // disks, q+n+1 sink.
        let source = 0;
        let sink = q + n + 1;
        self.graph.reset(q + n + 2);
        // Upper bound on the arc count: one source arc plus at most
        // MAX_COPIES replica arcs per bucket, one sink arc per disk. A cold
        // build then allocates each arena array once instead of doubling.
        self.graph
            .reserve_edges(q * (1 + rds_decluster::allocation::MAX_COPIES) + n);
        self.buckets.clear();
        self.buckets.extend_from_slice(buckets);
        self.disks.clear();
        if health.all_up() {
            self.disks.extend_from_slice(system.disks());
        } else {
            // Degraded disks enter the instance with scaled parameters, so
            // every downstream capacity/completion computation sees the
            // slowdown without any solver changes.
            self.disks.extend(
                system
                    .disks()
                    .iter()
                    .enumerate()
                    .map(|(j, d)| health.apply(j, d)),
            );
        }
        self.bucket_edges.clear();
        self.disk_edges.clear();
        self.replicas_per_disk.clear();
        self.replicas_per_disk.resize(n, 0);
        self.max_copies = 0;
        self.dead_arcs = 0;

        for (i, &b) in buckets.iter().enumerate() {
            self.bucket_edges
                .push(self.graph.add_edge(source, 1 + i, 1));
            let reps = alloc.replicas(b);
            assert!(!reps.is_empty(), "bucket {b} has no replicas");
            self.max_copies = self.max_copies.max(reps.len());
            // Deduplicate replica disks (a bucket stored twice on one disk
            // still needs only one retrieval path).
            let mut seen = [usize::MAX; rds_decluster::allocation::MAX_COPIES];
            let mut seen_len = 0;
            let mut available = 0;
            for d in reps.iter() {
                assert!(d < n, "replica disk {d} out of range for {n} disks");
                if health.is_offline(d) {
                    continue;
                }
                available += 1;
                if !seen[..seen_len].contains(&d) {
                    seen[seen_len] = d;
                    seen_len += 1;
                    self.graph.add_edge(1 + i, q + 1 + d, 1);
                    self.replicas_per_disk[d] += 1;
                }
            }
            if available == 0 {
                return Err(UnavailableBucket { bucket: b });
            }
        }
        self.disk_edges
            .extend((0..n).map(|j| self.graph.add_edge(q + 1 + j, sink, 0)));
        self.graph.finalize();
        Ok(())
    }

    /// Patches this instance **in place** from its current bucket set to
    /// `buckets`, preserving the vertex layout and every existing edge id —
    /// the delta counterpart of [`RetrievalInstance::rebuild_in`] that
    /// keeps a warm flow loadable.
    ///
    /// Requirements (checked): `buckets` has the same length as the
    /// current query, so bucket/disk vertex ids are unchanged. The health
    /// map must be the one the instance was built under (replica pruning
    /// is reproduced for the new buckets only).
    ///
    /// Slots are aligned by bucket *identity*, not position: a bucket
    /// present in both queries keeps its old slot (and its warm flow),
    /// regardless of where it appears in `buckets` — so afterwards
    /// `self.buckets` is a permutation of the request. For every slot
    /// whose bucket changed, the old replica arcs are deactivated
    /// (capacity zeroed, counted in [`RetrievalInstance::dead_arcs`]) and
    /// fresh arcs for the new bucket's surviving replicas are appended.
    /// `changed` receives the patched slot indices. Returns `Err` if a
    /// new bucket has no surviving replica; the instance is then in an
    /// unspecified (but safe) state and must be rebuilt before use —
    /// same contract as [`RetrievalInstance::rebuild_with_health`].
    pub fn patch_buckets<A: ReplicaSource + ?Sized>(
        &mut self,
        alloc: &A,
        buckets: &[Bucket],
        health: &HealthMap,
        changed: &mut Vec<usize>,
    ) -> Result<(), UnavailableBucket> {
        assert_eq!(
            buckets.len(),
            self.query_size(),
            "patch_buckets requires an equal-size query (vertex layout is |Q|-dependent)"
        );
        let q = self.query_size();
        let n = self.num_disks();
        changed.clear();
        // Match surviving buckets to their old slots (multiset matching —
        // duplicate buckets each claim one slot).
        let mut claimed = vec![false; q];
        let mut incoming = Vec::new();
        for &b in buckets {
            match (0..q).find(|&j| !claimed[j] && self.buckets[j] == b) {
                Some(j) => claimed[j] = true,
                None => incoming.push(b),
            }
        }
        // Pass 1: deactivate the old arcs of every changed slot. Reads the
        // adjacency index, which stays valid because no arc is appended
        // until pass 2 (appending marks the CSR index stale).
        for (i, kept) in claimed.into_iter().enumerate() {
            if kept {
                continue;
            }
            changed.push(i);
            let v = self.bucket_vertex(i);
            for idx in 0..self.graph.out_edges(v).len() {
                let e = self.graph.out_edges(v)[idx] as EdgeId;
                if e.is_multiple_of(2) && self.graph.cap(e) > 0 {
                    let d = self.disk_of_vertex(self.graph.target(e));
                    self.graph.set_cap(e, 0);
                    self.replicas_per_disk[d] -= 1;
                    self.dead_arcs += 1;
                }
            }
        }
        // Pass 2: attach the new buckets' surviving replicas. Slots are
        // processed in the same ascending order incoming buckets were
        // drained in before, so edge-id assignment is unchanged.
        let mut incoming = incoming.into_iter();
        for &i in changed.iter() {
            let b = incoming
                .next()
                .expect("equal sizes: one bucket per free slot");
            let v = self.bucket_vertex(i);
            let reps = alloc.replicas(b);
            assert!(!reps.is_empty(), "bucket {b} has no replicas");
            self.max_copies = self.max_copies.max(reps.len());
            let mut seen = [usize::MAX; rds_decluster::allocation::MAX_COPIES];
            let mut seen_len = 0;
            let mut available = 0;
            for d in reps.iter() {
                assert!(d < n, "replica disk {d} out of range for {n} disks");
                if health.is_offline(d) {
                    continue;
                }
                available += 1;
                if !seen[..seen_len].contains(&d) {
                    seen[seen_len] = d;
                    seen_len += 1;
                    self.graph.add_edge(v, q + 1 + d, 1);
                    self.replicas_per_disk[d] += 1;
                }
            }
            if available == 0 {
                return Err(UnavailableBucket { bucket: b });
            }
            self.buckets[i] = b;
        }
        self.graph.finalize();
        Ok(())
    }

    /// Whether deactivated arcs have accumulated past the live arc count,
    /// at which point a full rebuild beats further patching.
    pub fn needs_compaction(&self) -> bool {
        let live: u64 = self.replicas_per_disk.iter().sum();
        self.dead_arcs as u64 > live.max(1)
    }

    /// Query size `|Q|`.
    #[inline]
    pub fn query_size(&self) -> usize {
        self.buckets.len()
    }

    /// Number of disks `N`.
    #[inline]
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// Source vertex id.
    #[inline]
    pub fn source(&self) -> VertexId {
        0
    }

    /// Sink vertex id.
    #[inline]
    pub fn sink(&self) -> VertexId {
        self.query_size() + self.num_disks() + 1
    }

    /// Vertex id of bucket `i`.
    #[inline]
    pub fn bucket_vertex(&self, i: usize) -> VertexId {
        1 + i
    }

    /// Vertex id of disk `j`.
    #[inline]
    pub fn disk_vertex(&self, j: usize) -> VertexId {
        1 + self.query_size() + j
    }

    /// Disk index of a disk vertex.
    #[inline]
    pub fn disk_of_vertex(&self, v: VertexId) -> usize {
        debug_assert!(v > self.query_size() && v <= self.query_size() + self.num_disks());
        v - 1 - self.query_size()
    }

    /// Sets every disk-edge capacity to the number of buckets the disk can
    /// serve within budget `t` (Algorithm 6, lines 14-15 and 40-41).
    pub fn set_caps_for_budget<W: ArenaIndex>(&self, g: &mut FlowGraph<W>, t: Micros) {
        for (j, &e) in self.disk_edges.iter().enumerate() {
            g.set_cap(e, self.disks[j].capacity_within(t) as i64);
        }
    }

    /// The response time implied by the flow currently in `g`: the maximum
    /// completion time over disks retrieving at least one bucket.
    pub fn response_time_of_flow<W: ArenaIndex>(&self, g: &FlowGraph<W>) -> Micros {
        self.disk_edges
            .iter()
            .enumerate()
            .filter_map(|(j, &e)| {
                let k = g.flow(e);
                (k > 0).then(|| self.disks[j].completion_time(k as u64))
            })
            .max()
            .unwrap_or(Micros::ZERO)
    }

    /// The initial binary-search bounds of Algorithm 6 (lines 1-11):
    /// returns `(t_min, t_max, min_speed)` with `t_max` feasible and
    /// `t_min` strictly below the optimum.
    pub fn budget_bounds(&self) -> (Micros, Micros, Micros) {
        let q = self.query_size() as u64;
        let n = self.num_disks() as u64;
        let mut t_max = Micros::ZERO;
        let mut t_min = Micros::MAX;
        let mut min_speed = Micros::MAX;
        for d in &self.disks {
            let all_here = d.completion_time(q);
            if all_here > t_max {
                t_max = all_here;
            }
            // floor(q*C/N) keeps the bound a true lower bound in integer
            // arithmetic (Algorithm 6 line 7-8 uses |Q|/N * C).
            let fair_share = d.overhead() + Micros(d.cost().as_micros() * q / n.max(1));
            if fair_share < t_min {
                t_min = fair_share;
            }
            if d.cost() < min_speed {
                min_speed = d.cost();
            }
        }
        // Ensure t_min is infeasible (Algorithm 6 line 11).
        t_min = t_min.saturating_sub(min_speed);
        (t_min, t_max, min_speed)
    }

    /// Warm-started binary-search bounds: sharpens
    /// [`RetrievalInstance::budget_bounds`] on both ends while keeping its
    /// contract (`t_min` strictly below the optimum, `t_max` at or above
    /// it), so the binary phase starts with a much narrower bracket.
    ///
    /// * Lower bound: every bucket must be fetched from one of its
    ///   replicas, so the optimum is at least the largest, over buckets,
    ///   of the cheapest single-bucket completion among that bucket's
    ///   replicas.
    /// * Upper bound: a greedy pass assigns each bucket to the replica
    ///   with the cheapest next completion time; the resulting makespan
    ///   is the response time of a feasible schedule, hence a true upper
    ///   bound — usually far below `budget_bounds`' "slowest disk serves
    ///   everything" fallback.
    ///
    /// `scratch` holds the greedy per-disk counters; its contents are
    /// overwritten, only the allocation is reused.
    pub fn tightened_bounds(&self, scratch: &mut Vec<i64>) -> (Micros, Micros, Micros) {
        let (mut t_min, mut t_max, min_speed) = self.budget_bounds();
        if self.query_size() == 0 {
            return (t_min, t_max, min_speed);
        }
        scratch.clear();
        scratch.resize(self.num_disks(), 0);
        let mut greedy_makespan = Micros::ZERO;
        let mut per_bucket = Micros::ZERO;
        for i in 0..self.query_size() {
            let v = self.bucket_vertex(i);
            let mut best_next = Micros::MAX;
            let mut best_disk = usize::MAX;
            let mut best_single = Micros::MAX;
            for &e in self.graph.out_edges(v) {
                if e % 2 != 0 || self.graph.cap(e as usize) == 0 {
                    continue; // reverse slot of the source edge, or a
                              // replica arc deactivated by `patch_buckets`
                }
                let j = self.disk_of_vertex(self.graph.target(e as usize));
                let next = self.disks[j].completion_time(scratch[j] as u64 + 1);
                if next < best_next {
                    best_next = next;
                    best_disk = j;
                }
                let single = self.disks[j].completion_time(1);
                if single < best_single {
                    best_single = single;
                }
            }
            if best_disk != usize::MAX {
                scratch[best_disk] += 1;
                greedy_makespan = greedy_makespan.max(best_next);
                per_bucket = per_bucket.max(best_single);
            }
        }
        if greedy_makespan > Micros::ZERO && greedy_makespan < t_max {
            t_max = greedy_makespan;
        }
        t_min = t_min.max(per_bucket.saturating_sub(min_speed));
        (t_min, t_max, min_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::experiments::paper_example;
    use rds_storage::specs::CHEETAH;

    fn paper_instance() -> RetrievalInstance {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q1 = RangeQuery::new(0, 0, 3, 2);
        RetrievalInstance::build(&system, &alloc, &q1.buckets(7))
    }

    #[test]
    fn structure_matches_figure_4() {
        let inst = paper_instance();
        // |Q| + N + 2 vertices: 6 + 14 + 2 = 22.
        assert_eq!(inst.graph.num_vertices(), 22);
        assert_eq!(inst.query_size(), 6);
        assert_eq!(inst.num_disks(), 14);
        assert_eq!(inst.sink(), 21);
        // 6 source edges + 12 replica edges (2 copies each) + 14 disk edges.
        assert_eq!(inst.graph.num_edges(), 6 + 12 + 14);
        // Source edges have capacity 1, disk edges start at 0.
        for &e in &inst.bucket_edges {
            assert_eq!(inst.graph.cap(e), 1);
        }
        for &e in &inst.disk_edges {
            assert_eq!(inst.graph.cap(e), 0);
        }
    }

    #[test]
    fn replica_counts_cover_query() {
        let inst = paper_instance();
        let total: u64 = inst.replicas_per_disk.iter().sum();
        assert_eq!(total, 12, "6 buckets × 2 copies");
        assert_eq!(inst.max_copies, 2);
    }

    #[test]
    fn set_caps_for_budget_uses_cost_model() {
        let inst = paper_instance();
        let mut g = inst.graph.clone();
        // Budget 11.3 ms: site-1 disks (8.3ms cost, 3ms overhead) fit 1;
        // fast site-2 disks (6.1ms, 1ms) also 1; slow (13.2ms, 1ms) fit 0.
        inst.set_caps_for_budget(&mut g, Micros::from_tenths_ms(113));
        assert_eq!(g.cap(inst.disk_edges[0]), 1);
        assert_eq!(g.cap(inst.disk_edges[7]), 1);
        assert_eq!(g.cap(inst.disk_edges[9]), 0);
    }

    #[test]
    fn budget_bounds_bracket_optimum() {
        let inst = paper_instance();
        let (t_min, t_max, min_speed) = inst.budget_bounds();
        assert!(t_min < t_max);
        assert_eq!(min_speed, Micros::from_tenths_ms(61));
        // t_max: slowest disk retrieving everything: 1 + 0 + 6*13.2 = 80.2ms.
        assert_eq!(t_max, Micros::from_tenths_ms(802));
        // At t_max every disk can hold all 6 buckets.
        let mut g = inst.graph.clone();
        inst.set_caps_for_budget(&mut g, t_max);
        for (j, &e) in inst.disk_edges.iter().enumerate() {
            assert!(g.cap(e) >= 6, "disk {j} cap {}", g.cap(e));
        }
    }

    #[test]
    fn tightened_bounds_bracket_optimum_and_shrink_the_range() {
        use crate::pr::PushRelabelBinary;
        use crate::solver::RetrievalSolver;

        let inst = paper_instance();
        let optimum = PushRelabelBinary.solve(&inst).unwrap().response_time;
        let (t_min, t_max, min_speed) = inst.budget_bounds();
        let mut scratch = Vec::new();
        let (s_min, s_max, s_speed) = inst.tightened_bounds(&mut scratch);
        assert_eq!(s_speed, min_speed);
        // Still a valid bracket: strictly below the optimum from below,
        // at-or-above it from above.
        assert!(s_min < optimum, "{s_min:?} !< {optimum:?}");
        assert!(s_max >= optimum, "{s_max:?} < {optimum:?}");
        // And never looser than the plain Algorithm 6 bounds.
        assert!(s_min >= t_min && s_max <= t_max);
        // The greedy upper bound is far below "slowest disk serves all".
        assert!(s_max < t_max, "{s_max:?} vs {t_max:?}");
    }

    #[test]
    fn tightened_bounds_handle_empty_query() {
        let system = rds_storage::model::SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, rds_decluster::allocation::Placement::SingleSite);
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        let mut scratch = Vec::new();
        assert_eq!(inst.tightened_bounds(&mut scratch), inst.budget_bounds());
    }

    #[test]
    fn response_time_of_flow_takes_slowest_used_disk() {
        let inst = paper_instance();
        let mut g = inst.graph.clone();
        inst.set_caps_for_budget(&mut g, Micros::from_millis(100));
        // Push 2 buckets to disk 0 (completion 3 + 2*8.3 = 19.6ms) and one
        // to disk 7 (1 + 6.1 = 7.1ms) by hand.
        g.push(inst.disk_edges[0], 2);
        g.push(inst.disk_edges[7], 1);
        assert_eq!(inst.response_time_of_flow(&g), Micros::from_tenths_ms(196));
    }

    #[test]
    fn empty_query_builds() {
        let system = rds_storage::model::SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::new(4, rds_decluster::allocation::Placement::SingleSite);
        let inst = RetrievalInstance::build(&system, &alloc, &[]);
        assert_eq!(inst.query_size(), 0);
        assert_eq!(inst.response_time_of_flow(&inst.graph), Micros::ZERO);
    }

    #[test]
    #[should_panic(expected = "allocation addresses")]
    fn oversized_allocation_rejected() {
        let system = rds_storage::model::SystemConfig::homogeneous(CHEETAH, 4);
        let alloc = OrthogonalAllocation::paper_7x7(); // 14 disks
        RetrievalInstance::build(&system, &alloc, &[Bucket::new(0, 0)]);
    }

    #[test]
    fn failed_disks_are_routed_around() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let q = RangeQuery::new(0, 0, 3, 2);
        let buckets = q.buckets(7);
        // Fail the entire fast half of site 2.
        let failed = [7usize, 8, 10, 13];
        let inst = RetrievalInstance::build_with_failed_disks(&system, &alloc, &buckets, &failed)
            .expect("site 1 still holds every bucket");
        for &d in &failed {
            assert_eq!(inst.replicas_per_disk[d], 0, "failed disk {d} unused");
        }
        use crate::pr::PushRelabelBinary;
        use crate::solver::RetrievalSolver;
        let outcome = PushRelabelBinary.solve(&inst).unwrap();
        assert_eq!(outcome.flow_value, 6);
        for &(_, d) in outcome.schedule.assignments() {
            assert!(!failed.contains(&d), "schedule used failed disk {d}");
        }
    }

    #[test]
    fn losing_both_replicas_is_detected() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let b = Bucket::new(0, 0);
        // Both replicas of (0,0).
        let reps: Vec<usize> = rds_decluster::allocation::ReplicaSource::replicas(&alloc, b)
            .iter()
            .collect();
        let err =
            RetrievalInstance::build_with_failed_disks(&system, &alloc, &[b], &reps).unwrap_err();
        assert_eq!(err.bucket, b);
        assert!(err.to_string().contains("no surviving replica"));
    }

    #[test]
    fn rebuild_in_matches_fresh_build() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        // Start from one query, rebuild to several others (growing and
        // shrinking), checking full structural equality with a fresh build
        // each time.
        let q0 = RangeQuery::new(0, 0, 3, 2);
        let mut inst = RetrievalInstance::build(&system, &alloc, &q0.buckets(7));
        for (r, c) in [(7usize, 7usize), (1, 1), (4, 2), (2, 6)] {
            let q = RangeQuery::new(1, 1, r, c);
            let buckets = q.buckets(7);
            inst.rebuild_in(&system, &alloc, &buckets).unwrap();
            let fresh = RetrievalInstance::build(&system, &alloc, &buckets);
            assert_eq!(inst.buckets, fresh.buckets);
            assert_eq!(inst.disks, fresh.disks);
            assert_eq!(inst.disk_edges, fresh.disk_edges);
            assert_eq!(inst.bucket_edges, fresh.bucket_edges);
            assert_eq!(inst.replicas_per_disk, fresh.replicas_per_disk);
            assert_eq!(inst.max_copies, fresh.max_copies);
            assert_eq!(inst.graph.num_vertices(), fresh.graph.num_vertices());
            assert_eq!(inst.graph.num_edges(), fresh.graph.num_edges());
            for e in 0..inst.graph.num_edges() {
                assert_eq!(inst.graph.cap(e), fresh.graph.cap(e));
                assert_eq!(inst.graph.target(e), fresh.graph.target(e));
            }
        }
    }

    #[test]
    fn rebuild_after_unavailable_bucket_recovers() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let b = Bucket::new(0, 0);
        let reps: Vec<usize> = rds_decluster::allocation::ReplicaSource::replicas(&alloc, b)
            .iter()
            .collect();
        let q0 = RangeQuery::new(0, 0, 2, 2);
        let mut inst = RetrievalInstance::build(&system, &alloc, &q0.buckets(7));
        // A failed rebuild leaves the instance unusable but safe...
        assert!(inst
            .rebuild_with_failed_disks(&system, &alloc, &[b], &reps)
            .is_err());
        // ...and a subsequent successful rebuild fully restores it.
        let buckets = q0.buckets(7);
        inst.rebuild_in(&system, &alloc, &buckets).unwrap();
        let fresh = RetrievalInstance::build(&system, &alloc, &buckets);
        assert_eq!(inst.graph.num_edges(), fresh.graph.num_edges());
        assert_eq!(inst.buckets, fresh.buckets);
    }

    #[test]
    fn patch_buckets_matches_fresh_build_results() {
        use crate::pr::PushRelabelBinary;
        use crate::solver::RetrievalSolver;

        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let health = HealthMap::all_healthy();
        let q0 = RangeQuery::new(0, 0, 2, 3);
        let mut inst = RetrievalInstance::build(&system, &alloc, &q0.buckets(7));
        let mut changed = Vec::new();
        // Slide the range one column at a time; each step overlaps the
        // previous query in 4 of 6 buckets.
        for col in 1..5usize {
            let q = RangeQuery::new(0, col, 2, 3);
            let buckets = q.buckets(7);
            inst.patch_buckets(&alloc, &buckets, &health, &mut changed)
                .unwrap();
            assert_eq!(changed.len(), 2, "one column of two rows changed");
            let fresh = RetrievalInstance::build(&system, &alloc, &buckets);
            // Slot alignment keeps surviving buckets in place, so the
            // patched order is a permutation of the fresh one.
            let mut got: Vec<String> = inst.buckets.iter().map(|b| b.to_string()).collect();
            let mut want: Vec<String> = fresh.buckets.iter().map(|b| b.to_string()).collect();
            got.sort();
            want.sort();
            assert_eq!(got, want);
            assert_eq!(inst.replicas_per_disk, fresh.replicas_per_disk);
            let patched = PushRelabelBinary.solve(&inst).unwrap();
            let cold = PushRelabelBinary.solve(&fresh).unwrap();
            assert_eq!(patched.response_time, cold.response_time, "col {col}");
        }
        assert_eq!(inst.dead_arcs, 4 * 2 * 2, "2 buckets × 2 copies per step");
    }

    #[test]
    fn patch_buckets_noop_on_identical_query() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let buckets = RangeQuery::new(0, 0, 2, 2).buckets(7);
        let mut inst = RetrievalInstance::build(&system, &alloc, &buckets);
        let edges_before = inst.graph.num_edges();
        let mut changed = vec![99];
        inst.patch_buckets(&alloc, &buckets, &HealthMap::all_healthy(), &mut changed)
            .unwrap();
        assert!(changed.is_empty());
        assert_eq!(inst.graph.num_edges(), edges_before);
        assert_eq!(inst.dead_arcs, 0);
    }

    #[test]
    #[should_panic(expected = "equal-size")]
    fn patch_buckets_rejects_size_change() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let mut inst =
            RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, 2, 2).buckets(7));
        let bigger = RangeQuery::new(0, 0, 3, 3).buckets(7);
        let mut changed = Vec::new();
        let _ = inst.patch_buckets(&alloc, &bigger, &HealthMap::all_healthy(), &mut changed);
    }

    #[test]
    fn repeated_patching_eventually_needs_compaction() {
        let system = paper_example();
        let alloc = OrthogonalAllocation::paper_7x7();
        let health = HealthMap::all_healthy();
        let mut inst =
            RetrievalInstance::build(&system, &alloc, &RangeQuery::new(0, 0, 1, 2).buckets(7));
        assert!(!inst.needs_compaction());
        let mut changed = Vec::new();
        for step in 1..20usize {
            let buckets = RangeQuery::new(step % 6, step % 6, 1, 2).buckets(7);
            inst.patch_buckets(&alloc, &buckets, &health, &mut changed)
                .unwrap();
            if inst.needs_compaction() {
                return;
            }
        }
        panic!("dead arcs never outnumbered live arcs");
    }

    #[test]
    fn duplicate_replicas_deduplicated() {
        use rds_decluster::allocation::{ReplicaSource, Replicas};

        struct SameDisk;
        impl ReplicaSource for SameDisk {
            fn grid_size(&self) -> usize {
                2
            }
            fn num_disks(&self) -> usize {
                2
            }
            fn replicas(&self, _b: Bucket) -> Replicas {
                Replicas::from_slice(&[1, 1])
            }
        }

        let system = rds_storage::model::SystemConfig::homogeneous(CHEETAH, 2);
        let inst = RetrievalInstance::build(&system, &SameDisk, &[Bucket::new(0, 0)]);
        // 1 source edge + 1 (deduped) replica edge + 2 disk edges.
        assert_eq!(inst.graph.num_edges(), 4);
        assert_eq!(inst.replicas_per_disk, vec![0, 1]);
    }
}
