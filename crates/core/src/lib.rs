//! # rds-core
//!
//! The paper's contribution: **integrated maximum-flow algorithms for the
//! generalized optimal response time retrieval problem** (Altiparmak &
//! Tosun, ICPP 2012).
//!
//! Given a query (a set of buckets), a replicated declustering (which disks
//! hold each bucket) and a storage system (per-disk cost `C_j`, network
//! delay `D_j`, initial load `X_j`), the solvers compute a retrieval
//! schedule — one replica disk per bucket — minimizing the completion time
//! of the slowest disk.
//!
//! | Paper algorithm | Type |
//! |---|---|
//! | Algorithm 1 | [`ff::FordFulkersonBasic`] — basic problem, integrated FF |
//! | Algorithm 2 + 3 | [`ff::FordFulkersonIncremental`] — generalized, integrated FF |
//! | Algorithm 4 | `rds_flow::push_relabel::PushRelabel` — FIFO push-relabel engine |
//! | Algorithm 5 | [`pr::PushRelabelIncremental`] — integrated incremental PR |
//! | Algorithm 6 | [`pr::PushRelabelBinary`] — binary capacity scaling + flow conservation |
//! | Section V | [`parallel::ParallelPushRelabelBinary`] — lock-free parallel Algorithm 6 |
//! | Baseline \[12\] | [`blackbox::BlackBoxPushRelabel`] — binary scaling, from-scratch max-flow |
//! | Baseline \[18\] | [`blackbox::BlackBoxFordFulkerson`] — from-scratch FF per probe |
//!
//! All solvers implement [`solver::RetrievalSolver`] and return identical
//! optimal response times (they differ only in execution time), which the
//! test suite verifies extensively.
//!
//! Solvers are fallible (`Result<RetrievalOutcome, SolveError>`) and run
//! inside a reusable [`workspace::Workspace`] via
//! [`solver::RetrievalSolver::solve_in`]; the `solve` convenience wrapper
//! allocates a throwaway workspace. For many queries, use a
//! [`session::RetrievalSession`] (one stream with load feedback) or the
//! sharded batch [`engine::Engine`].
//!
//! ## Example
//!
//! ```
//! use rds_core::network::RetrievalInstance;
//! use rds_core::pr::PushRelabelBinary;
//! use rds_core::solver::RetrievalSolver;
//! use rds_decluster::orthogonal::OrthogonalAllocation;
//! use rds_decluster::query::{Query, RangeQuery};
//! use rds_storage::experiments::paper_example;
//!
//! let system = paper_example();                 // Table II, 14 disks
//! let alloc = OrthogonalAllocation::paper_7x7();
//! let q1 = RangeQuery::new(0, 0, 3, 2);         // the paper's q1
//!
//! let inst = RetrievalInstance::build(&system, &alloc, &q1.buckets(7));
//! let outcome = PushRelabelBinary::default().solve(&inst).unwrap();
//! assert_eq!(outcome.schedule.len(), 6);
//! ```

pub mod blackbox;
pub mod engine;
pub mod error;
pub mod fault;
pub mod ff;
pub mod increment;
pub mod network;
pub mod obs;
pub mod parallel;
pub mod pr;
pub mod prelude;
pub(crate) mod refine;
pub mod schedule;
pub mod serve;
pub mod session;
pub mod solver;
pub mod spec;
pub mod verify;
pub mod workspace;

pub use engine::{
    BatchQuery, Engine, EngineBuilder, EngineMetrics, EngineStats, MetricsSnapshot, RetryPolicy,
};
pub use error::{EngineError, SessionError, SolveError};
pub use fault::{
    solve_degraded, DiskHealth, FaultEvent, FaultInjector, HealthMap, PartialSchedule,
};
pub use network::RetrievalInstance;
pub use obs::metrics::{Histogram, LatencySummary, MetricsRegistry};
pub use obs::recorder::{FlightRecorder, FlightRecorderConfig, Postmortem, RecorderStats};
pub use obs::slo::{ClassSloReport, SloPolicy, SloReport, SloTarget};
pub use obs::span::{PhaseKind, PhaseRecord, QuerySpan, RejectReason, SpanId, SpanOutcome};
pub use obs::trace::{EventKind, Recorder, TraceEvent, TraceSink, Tracer};
pub use schedule::{RetrievalOutcome, Schedule, SolveStats};
pub use serve::{
    PriorityClass, QueryRequest, Rejected, ServeClock, ServeConfig, ServeError, ServeHandle,
    ServeReport, ServeResponse, ServeStats, Ticket,
};
pub use session::{RetrievalSession, ReuseCounters, ReusePolicy, SessionOutcome, SessionState};
pub use solver::RetrievalSolver;
pub use spec::{AnySolver, ArenaLayout, ScheduleObjective, SolveBudget, SolverKind, SolverSpec};
pub use workspace::{PoisonedWorkspace, Workspace};
