//! Sharded batch retrieval engine.
//!
//! An [`Engine`] serves many independent query streams — think one stream
//! per client or per tenant — over a single storage system and
//! allocation. Each stream is a full [`SessionState`] with its own disk
//! load feedback; streams are partitioned across shards by
//! `stream % num_shards`, each shard owning one [`Workspace`] and the
//! states of its streams. With more than one shard,
//! [`Engine::submit_batch`] runs the shards on scoped worker threads.
//!
//! Because a stream lives wholly inside one shard and every shard
//! processes its queries in input order, batch results are deterministic:
//! the same batch produces the same outcomes for any shard count
//! (including 1). Cross-stream interactions don't exist by construction —
//! streams model *independent* sessions, the unit of parallelism the
//! paper's multi-query discussion permits.
//!
//! ## Fault tolerance
//!
//! Three layers keep a batch useful when hardware misbehaves:
//!
//! * **Fault awareness** — an optional [`FaultInjector`] (or any
//!   time-varying health source) makes every query plan around the
//!   [`HealthMap`] in force at its arrival: offline replicas are pruned,
//!   degraded disks carry inflated cost.
//! * **Replanning** — a query that is infeasible under the current health
//!   (some bucket lost every replica) is retried under the health at
//!   deterministic simulated-time backoff probes
//!   ([`RetryPolicy`]); if the engine is in degraded mode it finally
//!   falls back to a best-effort solve that serves the retrievable subset
//!   and reports the rest in [`SessionOutcome::unservable`].
//! * **Containment** — each query runs under `catch_unwind`, so a panic
//!   (a solver bug, a poisoned allocation) is confined to the query that
//!   hit it: it reports [`EngineError::ShardFailed`], the panicking
//!   stream's state is discarded (its virtual clock restarts), and every
//!   other stream's results are returned unharmed.

use crate::error::{EngineError, SessionError, SolveError};
use crate::fault::{FaultInjector, HealthMap};
use crate::obs::metrics::{Histogram, LatencySummary, MetricsRegistry};
use crate::obs::recorder::{FlightRecorder, FlightRecorderConfig, Postmortem, RecorderStats};
use crate::obs::slo::SloPolicy;
use crate::obs::trace::{EventKind, TraceEvent};
use crate::schedule::SolveStats;
use crate::session::{ReuseCounters, ReusePolicy, SessionOutcome, SessionState};
use crate::solver::RetrievalSolver;
use crate::spec::{AnySolver, ArenaLayout, ScheduleObjective, SolveBudget, SolverKind, SolverSpec};
use crate::workspace::Workspace;
use rds_decluster::allocation::ReplicaSource;
use rds_decluster::query::Bucket;
use rds_flow::parallel::WorkerPool;
use rds_storage::model::SystemConfig;
use rds_storage::time::Micros;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// One query of a batch: which stream it belongs to, when it arrives,
/// and what it asks for.
#[derive(Clone, Debug)]
pub struct BatchQuery {
    /// Stream (independent session) identifier. Arrivals must be monotone
    /// non-decreasing *within* a stream; streams don't constrain each
    /// other.
    pub stream: usize,
    /// Arrival time on the stream's virtual clock.
    pub arrival: Micros,
    /// The requested buckets.
    pub buckets: Vec<Bucket>,
}

/// How the engine replans queries that are infeasible under the current
/// disk health: up to `max_retries` re-solves, probing the health map at
/// `arrival + backoff`, `arrival + 2·backoff`, … on the simulated clock.
/// A retry only re-solves when the probed health actually changed, so
/// retries are free while an outage persists. The stream's virtual clock
/// never advances past the query's arrival — later queries are unaffected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum re-solve attempts per query (0 disables replanning).
    pub max_retries: u32,
    /// Simulated-time spacing between health probes.
    pub backoff: Micros,
}

impl Default for RetryPolicy {
    /// No retries; `backoff` of 1 ms is only used if `max_retries` is
    /// raised.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Micros::from_millis(1),
        }
    }
}

/// Time source for fault probes during replanning.
///
/// Batch runs probe the fault schedule on the *simulated* clock (the
/// query's arrival plus deterministic backoff steps), so results never
/// depend on wall time. The real-time serving loop
/// ([`Engine::serve`](crate::serve)) instead probes the wall clock, so a
/// disk that recovers *while a query is in flight* is observed by the
/// retry loop — not only in simulated-clock tests.
pub(crate) trait ProbeClock: Sync {
    /// The current time as seen by a query that arrived at `arrival`.
    /// Virtual clocks return `arrival` itself.
    fn now(&self, arrival: Micros) -> Micros;

    /// Blocks until `t` (real clocks only; virtual clocks return
    /// immediately — simulated backoff needs no waiting).
    fn wait_until(&self, t: Micros) {
        let _ = t;
    }
}

/// The batch-mode clock: time is wherever the query's arrival says it is.
pub(crate) struct ArrivalClock;

impl ProbeClock for ArrivalClock {
    fn now(&self, arrival: Micros) -> Micros {
        arrival
    }
}

/// Aggregate counters across everything an [`Engine`] has processed.
#[must_use]
#[derive(Clone, Copy, Debug, Default)]
#[non_exhaustive]
pub struct EngineStats {
    /// Queries submitted (successful or not).
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Batches processed.
    pub batches: u64,
    /// Wall-clock time spent inside `submit_batch`.
    pub elapsed: Duration,
    /// Solver work counters summed over all successful queries.
    pub solve_stats: SolveStats,
    /// Total solves that ran in the engine's workspaces — equals the
    /// number of successful solver invocations that reused pre-allocated
    /// buffers instead of allocating fresh ones.
    pub workspace_solves: u64,
    /// Re-solves triggered by infeasibility under a changed health map.
    pub retries: u64,
    /// Queries answered by the best-effort degraded path (some buckets
    /// dropped).
    pub degraded_solves: u64,
    /// Buckets dropped as unservable across all degraded solves.
    pub dropped_buckets: u64,
    /// Queries lost to a contained panic ([`EngineError::ShardFailed`]).
    pub shard_failures: u64,
    /// Batches (per shard) that took the fused drain path: multiple
    /// distinct-stream groups solved concurrently on detached lanes
    /// sharing the worker pool (see [`SolverSpec::batch_fuse`]).
    pub fused_batches: u64,
    /// Queries solved on a fused lane (subset of `queries`).
    pub fused_queries: u64,
    /// Cross-query reuse effectiveness (schedule-cache hits, delta
    /// patches, fallbacks), summed over every live stream.
    pub reuse: ReuseCounters,
}

impl EngineStats {
    /// Query throughput over the accumulated `submit_batch` wall time.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }
}

/// A point-in-time snapshot of an [`Engine`]'s observability state:
/// aggregate counters, quantile summaries of the latency histograms, the
/// histograms themselves, and per-kind trace-event totals.
///
/// Produced by [`Engine::metrics_snapshot`]; plain owned data. Use
/// [`MetricsSnapshot::to_registry`] (or the `to_prometheus`/`to_json`
/// shorthands) to export it.
#[must_use]
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Aggregate counters (queries, errors, retries, …).
    pub stats: EngineStats,
    /// Number of shards.
    pub shards: usize,
    /// p50/p95/p99 of per-query wall-clock solve time (µs).
    pub solve_latency_us: LatencySummary,
    /// p50/p95/p99 of binary-search probes per successful solve.
    pub probes_per_solve: LatencySummary,
    /// p50/p95/p99 of simulated queue→completion time (µs).
    pub turnaround_us: LatencySummary,
    /// The underlying histograms.
    pub histograms: EngineMetrics,
    /// Trace-event totals by [`EventKind`] (all zeros unless tracing was
    /// enabled with [`Engine::with_tracing`]).
    pub trace_counts: [u64; EventKind::COUNT],
}

impl MetricsSnapshot {
    /// Assembles the snapshot into a named [`MetricsRegistry`] (metric
    /// names are prefixed `rds_`), ready for Prometheus or JSON export.
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("rds_queries_total", self.stats.queries);
        reg.inc_counter("rds_errors_total", self.stats.errors);
        reg.inc_counter("rds_batches_total", self.stats.batches);
        reg.inc_counter("rds_retries_total", self.stats.retries);
        reg.inc_counter("rds_degraded_solves_total", self.stats.degraded_solves);
        reg.inc_counter("rds_dropped_buckets_total", self.stats.dropped_buckets);
        reg.inc_counter("rds_shard_failures_total", self.stats.shard_failures);
        reg.inc_counter("rds_fuse_batches_total", self.stats.fused_batches);
        reg.inc_counter("rds_fuse_queries_total", self.stats.fused_queries);
        reg.inc_counter("rds_workspace_solves_total", self.stats.workspace_solves);
        reg.inc_counter("rds_cache_hits_total", self.stats.reuse.cache_hits);
        reg.inc_counter("rds_cache_misses_total", self.stats.reuse.cache_misses);
        reg.inc_counter(
            "rds_cache_evictions_total",
            self.stats.reuse.cache_evictions,
        );
        reg.inc_counter("rds_delta_patches_total", self.stats.reuse.delta_patches);
        reg.inc_counter(
            "rds_delta_fallbacks_total",
            self.stats.reuse.delta_fallbacks,
        );
        reg.inc_counter(
            "rds_elapsed_us_total",
            self.stats.elapsed.as_micros() as u64,
        );
        reg.inc_counter("rds_solver_probes_total", self.stats.solve_stats.probes);
        reg.inc_counter(
            "rds_solver_resume_calls_total",
            self.stats.solve_stats.resume_calls,
        );
        reg.inc_counter(
            "rds_solver_maxflow_calls_total",
            self.stats.solve_stats.maxflow_calls,
        );
        reg.inc_counter(
            "rds_solver_increments_total",
            self.stats.solve_stats.increments,
        );
        reg.inc_counter(
            "rds_solver_dfs_calls_total",
            self.stats.solve_stats.dfs_calls,
        );
        reg.inc_counter("rds_solver_pushes_total", self.stats.solve_stats.pushes);
        reg.inc_counter("rds_solver_relabels_total", self.stats.solve_stats.relabels);
        reg.inc_counter(
            "rds_refine_passes_total",
            self.stats.solve_stats.refine_passes,
        );
        reg.inc_counter(
            "rds_refine_cycles_total",
            self.stats.solve_stats.refine_cycles,
        );
        reg.inc_counter(
            "rds_refine_moved_units_total",
            self.stats.solve_stats.refine_moved,
        );
        reg.set_gauge("rds_shards", self.shards as i64);
        // The arena width the solvers last ran under ("auto" until the
        // first successful solve).
        reg.set_gauge_labeled(
            "rds_arena_layout",
            &[("layout", self.stats.solve_stats.arena_layout.name())],
            1,
        );
        for kind in EventKind::ALL {
            let count = self.trace_counts[kind as usize];
            if count > 0 {
                reg.inc_counter(&format!("rds_trace_{}_total", kind.name()), count);
            }
        }
        *reg.histogram_mut("rds_solve_latency_us") = self.histograms.solve_latency_us.clone();
        *reg.histogram_mut("rds_probes_per_solve") = self.histograms.probes_per_solve.clone();
        *reg.histogram_mut("rds_turnaround_us") = self.histograms.turnaround_us.clone();
        reg
    }

    /// Prometheus text exposition of [`MetricsSnapshot::to_registry`].
    pub fn to_prometheus(&self) -> String {
        self.to_registry().to_prometheus()
    }

    /// JSON rendering of [`MetricsSnapshot::to_registry`].
    pub fn to_json(&self) -> String {
        self.to_registry().to_json()
    }
}

/// The latency histograms an [`Engine`] maintains across batches, merged
/// from per-shard recordings after each batch (shards record into private
/// copies, so the hot path never contends).
#[must_use]
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct EngineMetrics {
    /// Wall-clock time spent solving each query (including retries and
    /// the degraded fallback), in microseconds.
    pub solve_latency_us: Histogram,
    /// Binary-search probes per successful solve.
    pub probes_per_solve: Histogram,
    /// Simulated queue→completion time per successful query
    /// (`completion - arrival`), in microseconds.
    pub turnaround_us: Histogram,
}

/// Counters and histograms a shard reports back from one batch run.
#[derive(Debug, Default, Clone)]
pub(crate) struct ShardTally {
    pub(crate) retries: u64,
    pub(crate) degraded_solves: u64,
    pub(crate) dropped_buckets: u64,
    pub(crate) shard_failures: u64,
    pub(crate) fused_batches: u64,
    pub(crate) fused_queries: u64,
    pub(crate) metrics: EngineMetrics,
}

impl ShardTally {
    pub(crate) fn accumulate(&self, stats: &mut EngineStats, metrics: &mut EngineMetrics) {
        stats.retries += self.retries;
        stats.degraded_solves += self.degraded_solves;
        stats.dropped_buckets += self.dropped_buckets;
        stats.shard_failures += self.shard_failures;
        stats.fused_batches += self.fused_batches;
        stats.fused_queries += self.fused_queries;
        metrics
            .solve_latency_us
            .merge(&self.metrics.solve_latency_us);
        metrics
            .probes_per_solve
            .merge(&self.metrics.probes_per_solve);
        metrics.turnaround_us.merge(&self.metrics.turnaround_us);
    }

    /// Folds a per-lane tally into this shard-level one (used by the
    /// fused drain, which tallies each lane privately and merges in
    /// deterministic group order).
    pub(crate) fn merge(&mut self, other: &ShardTally) {
        self.retries += other.retries;
        self.degraded_solves += other.degraded_solves;
        self.dropped_buckets += other.dropped_buckets;
        self.shard_failures += other.shard_failures;
        self.fused_batches += other.fused_batches;
        self.fused_queries += other.fused_queries;
        self.metrics
            .solve_latency_us
            .merge(&other.metrics.solve_latency_us);
        self.metrics
            .probes_per_solve
            .merge(&other.metrics.probes_per_solve);
        self.metrics
            .turnaround_us
            .merge(&other.metrics.turnaround_us);
    }
}

/// One worker's slice of the engine: a reusable workspace plus the states
/// of the streams this shard owns.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) workspace: Workspace,
    pub(crate) states: HashMap<usize, SessionState>,
    /// Scratch health map, refreshed per query from the fault schedule.
    health: HealthMap,
    /// Finished [`crate::obs::span::QuerySpan`]s from the serving loop
    /// (always-on, bounded; see [`FlightRecorder`]). Batch runs leave it
    /// empty — spans are only armed by [`Engine::serve`](crate::serve).
    pub(crate) recorder: FlightRecorder,
    /// Recycled solve lanes for the fused drain path — a free list of
    /// detached workspaces with plane sharing enabled, checked out one
    /// per distinct-stream group and returned after the drain. Steady
    /// state never allocates a new lane once the list has grown to the
    /// batch's group count.
    pub(crate) lanes: Vec<FusedLane>,
}

/// One detached solve lane of the fused batch path: a private
/// [`Workspace`] (plane sharing on, so it checks out the instance's
/// topology plane instead of deep-copying the arena) and a private
/// health scratch map. Lanes never hold a [`WorkerPool`] — a fused lane
/// runs *inside* a pool task, and dispatching on the same pool from a
/// task would deadlock.
#[derive(Debug, Default)]
pub(crate) struct FusedLane {
    pub(crate) workspace: Workspace,
    pub(crate) health: HealthMap,
}

/// Engine-wide fault handling knobs, shared read-only by every shard.
pub(crate) struct FaultConfig<'f> {
    pub(crate) injector: Option<&'f FaultInjector>,
    pub(crate) retry: RetryPolicy,
    pub(crate) degraded: bool,
}

/// Read-only context shared by every shard for the duration of one batch.
pub(crate) struct BatchCtx<'c, A: ?Sized, S: ?Sized> {
    pub(crate) system: &'c SystemConfig,
    pub(crate) alloc: &'c A,
    pub(crate) solver: &'c S,
    pub(crate) faults: FaultConfig<'c>,
    pub(crate) reuse: ReusePolicy,
    pub(crate) objective: ScheduleObjective,
}

/// One shard's batch output: its tally plus `(original_index, result)`
/// pairs for the queries it owned.
type ShardOutput = (
    ShardTally,
    Vec<(usize, Result<SessionOutcome, EngineError>)>,
);

impl Shard {
    /// Runs this shard's queries (given by index into `queries`) in input
    /// order, appending `(original_index, result)` pairs to `out`.
    fn run<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
        &mut self,
        shard_idx: usize,
        ctx: &BatchCtx<'_, A, S>,
        queries: &[BatchQuery],
        indices: &[usize],
        out: &mut Vec<(usize, Result<SessionOutcome, EngineError>)>,
    ) -> ShardTally {
        let mut tally = ShardTally::default();
        self.workspace.tracer.emit(TraceEvent::ShardBatch {
            shard: shard_idx as u32,
            queries: indices.len() as u32,
        });
        for &i in indices {
            let q = &queries[i];
            // Contain panics to the query that hit them: the poisoned
            // stream's state is dropped (fresh clock on its next query),
            // everything else in the batch proceeds.
            let started = std::time::Instant::now();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                self.run_one(ctx, q, &ArrivalClock, &mut tally)
            }));
            match caught {
                Ok(result) => {
                    tally
                        .metrics
                        .solve_latency_us
                        .record(started.elapsed().as_micros() as u64);
                    if let Ok(o) = &result {
                        tally
                            .metrics
                            .probes_per_solve
                            .record(o.outcome.stats.probes);
                        tally
                            .metrics
                            .turnaround_us
                            .record((o.completion - o.arrival).as_micros());
                    }
                    out.push((i, result));
                }
                Err(_) => {
                    self.states.remove(&q.stream);
                    tally.shard_failures += 1;
                    out.push((i, Err(EngineError::ShardFailed { shard: shard_idx })));
                }
            }
        }
        tally
    }

    /// Solves one query under the health in force at its arrival, with
    /// bounded replanning and an optional degraded fallback.
    ///
    /// `clock` decides *when* the fault schedule is probed: batch runs use
    /// [`ArrivalClock`] (pure simulated time — deterministic), the serving
    /// loop passes its real clock so mid-flight health transitions are
    /// seen by the retry loop.
    pub(crate) fn run_one<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
        &mut self,
        ctx: &BatchCtx<'_, A, S>,
        q: &BatchQuery,
        clock: &dyn ProbeClock,
        tally: &mut ShardTally,
    ) -> Result<SessionOutcome, EngineError> {
        let state = self
            .states
            .entry(q.stream)
            .or_insert_with(|| new_stream_state(ctx));
        run_one_core(
            ctx,
            q,
            state,
            &mut self.workspace,
            &mut self.health,
            clock,
            tally,
        )
    }

    /// Drains this shard's queries through the fused path: queries are
    /// grouped by stream (preserving input order within a group — streams
    /// are load-coupled through `busy_until`, so only *distinct* streams
    /// are independent), each group runs serially on its own checked-out
    /// [`FusedLane`], and the groups execute concurrently as one task
    /// batch on the shared `pool`. Results and tallies are merged in
    /// deterministic group order, so the output is bit-identical to the
    /// serial [`Shard::run`].
    ///
    /// Falls back to the serial path when fewer than two stream groups
    /// exist — there is nothing to fuse.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_fused<
        A: ReplicaSource + Sync + ?Sized,
        S: RetrievalSolver + Sync + ?Sized,
    >(
        &mut self,
        shard_idx: usize,
        ctx: &BatchCtx<'_, A, S>,
        queries: &[BatchQuery],
        indices: &[usize],
        pool: &WorkerPool,
        lane_layout: ArenaLayout,
        budget: SolveBudget,
        out: &mut Vec<(usize, Result<SessionOutcome, EngineError>)>,
    ) -> ShardTally {
        // Group by stream, preserving both group discovery order and
        // intra-group query order.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut group_of: HashMap<usize, usize> = HashMap::new();
        for &i in indices {
            let stream = queries[i].stream;
            let g = *group_of.entry(stream).or_insert_with(|| {
                groups.push((stream, Vec::new()));
                groups.len() - 1
            });
            groups[g].1.push(i);
        }
        if groups.len() < 2 {
            return self.run(shard_idx, ctx, queries, indices, out);
        }

        let mut tally = ShardTally {
            fused_batches: 1,
            fused_queries: indices.len() as u64,
            ..ShardTally::default()
        };
        self.workspace.tracer.emit(TraceEvent::ShardBatch {
            shard: shard_idx as u32,
            queries: indices.len() as u32,
        });
        self.ensure_lanes(groups.len(), lane_layout, budget);

        // Move each group's stream state out of the shard map for the
        // duration of the drain (a stream lives in exactly one group).
        let mut lane_states: Vec<Option<SessionState>> = groups
            .iter()
            .map(|(stream, _)| self.states.remove(stream))
            .collect();
        let mut lane_tallies: Vec<ShardTally> =
            groups.iter().map(|_| ShardTally::default()).collect();
        let mut lane_outs: Vec<Vec<(usize, Result<SessionOutcome, EngineError>)>> = groups
            .iter()
            .map(|(_, g)| Vec::with_capacity(g.len()))
            .collect();

        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self.lanes[..groups.len()]
                .iter_mut()
                .zip(lane_states.iter_mut())
                .zip(lane_tallies.iter_mut())
                .zip(lane_outs.iter_mut())
                .zip(groups.iter())
                .map(|((((lane, state), lane_tally), lane_out), (_, group))| {
                    Box::new(move || {
                        run_lane(
                            shard_idx, ctx, queries, group, lane, state, lane_tally, lane_out,
                        )
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_tasks(tasks);
        }

        // Deterministic merge in group order: states back into the map,
        // per-lane tallies and results into the shard-level output.
        for ((stream, _), state) in groups.iter().zip(lane_states) {
            if let Some(state) = state {
                self.states.insert(*stream, state);
            }
        }
        for lane_tally in &lane_tallies {
            tally.merge(lane_tally);
        }
        for lane_out in lane_outs {
            out.extend(lane_out);
        }
        self.absorb_lane_traces(groups.len());
        tally
    }

    /// Grows the lane free list to `n` and re-arms the first `n` lanes
    /// with the engine budget. Lanes inherit the shard's arena layout and
    /// run with plane sharing on; when the shard workspace has a trace
    /// recorder, each lane gets a small private one so per-kind counts
    /// stay exact (folded back by [`Shard::absorb_lane_traces`]).
    pub(crate) fn ensure_lanes(&mut self, n: usize, layout: ArenaLayout, budget: SolveBudget) {
        let record = self.workspace.recorder().is_some();
        while self.lanes.len() < n {
            let mut lane = FusedLane::default();
            lane.workspace.set_arena_layout(layout);
            lane.workspace.set_plane_sharing(true);
            self.lanes.push(lane);
        }
        for lane in &mut self.lanes[..n] {
            lane.workspace.arm_budget(budget);
            if record && lane.workspace.recorder().is_none() {
                lane.workspace.install_recorder(64);
            }
        }
    }

    /// Folds the first `n` lanes' trace counts into the shard recorder so
    /// per-kind totals (e.g. plane checkouts) survive with tracing on;
    /// ring contents stay per-lane (cross-lane event order is undefined).
    pub(crate) fn absorb_lane_traces(&mut self, n: usize) {
        let n = n.min(self.lanes.len());
        let Some(rec) = self.workspace.recorder_mut() else {
            return;
        };
        for lane in &mut self.lanes[..n] {
            if let Some(lane_rec) = lane.workspace.recorder() {
                rec.absorb_counts(lane_rec);
            }
            if let Some(lane_rec) = lane.workspace.recorder_mut() {
                lane_rec.clear();
            }
        }
    }
}

/// Creates the session state for a stream's first query under `ctx`'s
/// policies.
pub(crate) fn new_stream_state<A: ?Sized, S: ?Sized>(ctx: &BatchCtx<'_, A, S>) -> SessionState {
    let mut s = SessionState::with_reuse(ctx.system.num_disks(), ctx.reuse);
    s.set_objective(ctx.objective);
    s
}

/// Runs one stream group serially on its checked-out lane: the fused
/// counterpart of the loop body in [`Shard::run`], with identical panic
/// containment (the poisoned stream restarts fresh on its next query;
/// batchmates proceed).
#[allow(clippy::too_many_arguments)]
fn run_lane<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
    shard_idx: usize,
    ctx: &BatchCtx<'_, A, S>,
    queries: &[BatchQuery],
    group: &[usize],
    lane: &mut FusedLane,
    state: &mut Option<SessionState>,
    tally: &mut ShardTally,
    out: &mut Vec<(usize, Result<SessionOutcome, EngineError>)>,
) {
    for &i in group {
        let q = &queries[i];
        let started = std::time::Instant::now();
        let st = state.get_or_insert_with(|| new_stream_state(ctx));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_one_core(
                ctx,
                q,
                st,
                &mut lane.workspace,
                &mut lane.health,
                &ArrivalClock,
                tally,
            )
        }));
        match caught {
            Ok(result) => {
                tally
                    .metrics
                    .solve_latency_us
                    .record(started.elapsed().as_micros() as u64);
                if let Ok(o) = &result {
                    tally
                        .metrics
                        .probes_per_solve
                        .record(o.outcome.stats.probes);
                    tally
                        .metrics
                        .turnaround_us
                        .record((o.completion - o.arrival).as_micros());
                }
                out.push((i, result));
            }
            Err(_) => {
                *state = None;
                tally.shard_failures += 1;
                out.push((i, Err(EngineError::ShardFailed { shard: shard_idx })));
            }
        }
    }
}

/// Solves one query for `state` on the given workspace/health scratch —
/// the shared core of the serial per-shard path ([`Shard::run_one`]) and
/// the fused lane path ([`run_lane`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_one_core<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
    ctx: &BatchCtx<'_, A, S>,
    q: &BatchQuery,
    state: &mut SessionState,
    workspace: &mut Workspace,
    health: &mut HealthMap,
    clock: &dyn ProbeClock,
    tally: &mut ShardTally,
) -> Result<SessionOutcome, EngineError> {
    let faults = &ctx.faults;
    if let Some(inj) = faults.injector {
        // On a real clock a query observed later than it arrived sees
        // the *current* health, not the health at arrival.
        inj.health_at(clock.now(q.arrival).max(q.arrival), health);
    } else {
        health.reset();
    }
    // One HealthTransition per change *as observed by this stream* —
    // streams are pinned to shards, so the event count is identical
    // for every shard count.
    let fp = health.fingerprint();
    if fp != state.observed_health_fp {
        state.observed_health_fp = fp;
        workspace
            .tracer
            .emit(TraceEvent::HealthTransition { fingerprint: fp });
    }

    let mut result = state.submit_with_health(
        ctx.system, ctx.alloc, ctx.solver, workspace, q.arrival, &q.buckets, health,
    );

    // Replan: probe the fault schedule at deterministic backoff steps
    // and re-solve whenever the health actually changed. Only
    // infeasibility is retryable — it is the one error a recovered
    // disk can cure.
    if let Some(inj) = faults.injector {
        let mut attempt = 0u32;
        while attempt < faults.retry.max_retries && is_infeasible(&result) {
            attempt += 1;
            // Probe at the scheduled backoff step or the current real
            // time, whichever is later. Virtual clocks never wait and
            // report `arrival`, so batch behavior is unchanged; the
            // serving loop's real clock sleeps out the backoff (capped
            // by the query deadline) and sees mid-flight recoveries.
            let target = q.arrival + faults.retry.backoff * attempt as u64;
            clock.wait_until(target);
            let probe = target.max(clock.now(q.arrival));
            let before = health.fingerprint();
            inj.health_at(probe, health);
            if health.fingerprint() == before {
                continue;
            }
            tally.retries += 1;
            state.observed_health_fp = health.fingerprint();
            workspace
                .tracer
                .emit(TraceEvent::RetryScheduled { attempt, probe });
            result = state.submit_with_health(
                ctx.system, ctx.alloc, ctx.solver, workspace, q.arrival, &q.buckets, health,
            );
        }
    }

    // Last resort in degraded mode: serve what still has a replica.
    if faults.degraded && is_infeasible(&result) {
        result = state.submit_degraded_with(
            ctx.system, ctx.alloc, ctx.solver, workspace, q.arrival, &q.buckets, health,
        );
        if let Ok(o) = &result {
            tally.degraded_solves += 1;
            tally.dropped_buckets += o.unservable.len() as u64;
        }
    }

    result.map_err(EngineError::from)
}

fn is_infeasible(result: &Result<SessionOutcome, SessionError>) -> bool {
    matches!(
        result,
        Err(SessionError::Solve(SolveError::Infeasible { .. }))
    )
}

/// A batch front-end that shards independent query streams across worker
/// threads, each with a persistent [`Workspace`] and per-stream
/// [`SessionState`]s.
pub struct Engine<'a, A: ReplicaSource + Sync, S: RetrievalSolver + Sync> {
    pub(crate) system: &'a SystemConfig,
    pub(crate) alloc: &'a A,
    pub(crate) solver: S,
    pub(crate) shards: Vec<Shard>,
    pub(crate) stats: EngineStats,
    pub(crate) metrics: EngineMetrics,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) retry: RetryPolicy,
    pub(crate) degraded: bool,
    pub(crate) reuse: ReusePolicy,
    pub(crate) objective: ScheduleObjective,
    pub(crate) budget: SolveBudget,
    pub(crate) slo: SloPolicy,
    /// Spans of submissions the serving loop *rejected* at admission
    /// (they never reach a shard, so they get their own recorder).
    pub(crate) rejections: FlightRecorder,
    /// The shared worker pool, when one exists (parallel solver kind
    /// and/or fused batch drains).
    pub(crate) pool: Option<WorkerPool>,
    /// Whether batch drains take the fused path (see
    /// [`SolverSpec::batch_fuse`]). Requires `pool`.
    pub(crate) batch_fuse: bool,
    /// Arena layout fused lanes are configured with (mirrors the shard
    /// workspaces).
    pub(crate) lane_layout: ArenaLayout,
}

/// Step-by-step construction of an [`Engine`] around a [`SolverSpec`] —
/// the unified alternative to threading a concrete solver type through
/// [`Engine::new`]:
///
/// ```
/// use rds_core::engine::Engine;
/// use rds_core::session::ReusePolicy;
/// use rds_core::spec::{ScheduleObjective, SolverKind, SolverSpec};
/// use rds_decluster::orthogonal::OrthogonalAllocation;
/// use rds_storage::experiments::paper_example;
///
/// let system = paper_example();
/// let alloc = OrthogonalAllocation::paper_7x7();
/// let engine = Engine::builder(&system, &alloc)
///     .solver_spec(
///         SolverSpec::new(SolverKind::PushRelabelBinary)
///             .objective(ScheduleObjective::MinMaxLoad)
///             .reuse(ReusePolicy::warm()),
///     )
///     .shards(2)
///     .build();
/// assert_eq!(engine.num_shards(), 2);
/// ```
#[must_use]
pub struct EngineBuilder<'a, A: ReplicaSource + Sync> {
    system: &'a SystemConfig,
    alloc: &'a A,
    spec: SolverSpec,
    shards: usize,
    retry: RetryPolicy,
    degraded: bool,
    injector: Option<FaultInjector>,
    tracing: Option<usize>,
    flight_recorder: Option<FlightRecorderConfig>,
}

impl<'a, A: ReplicaSource + Sync> EngineBuilder<'a, A> {
    /// Selects the algorithm ([`SolverKind::PushRelabelBinary`] is the
    /// default), keeping the other solver knobs.
    pub fn solver(mut self, kind: SolverKind) -> Self {
        self.spec.kind = kind;
        self
    }

    /// Replaces the whole [`SolverSpec`] (kind and knobs).
    pub fn solver_spec(mut self, spec: SolverSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Number of shard workers (minimum 1; default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Replanning policy for infeasible queries.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables the best-effort degraded fallback.
    pub fn degraded_mode(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// Installs a fault schedule.
    pub fn fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Installs a per-shard trace recorder of `capacity` events.
    pub fn tracing(mut self, capacity: usize) -> Self {
        self.tracing = Some(capacity);
        self
    }

    /// Overrides the always-on flight-recorder retention knobs (ring
    /// capacity, healthy head-sample size, phases per span). The default
    /// [`FlightRecorderConfig`] applies when this is not called.
    pub fn flight_recorder(mut self, config: FlightRecorderConfig) -> Self {
        self.flight_recorder = Some(config);
        self
    }

    /// Materializes the engine.
    ///
    /// For the parallel solver kind this creates **one** shared
    /// [`WorkerPool`] sized from [`SolverSpec::parallelism`] and installs
    /// it in every shard workspace, so all shards (and every solve) reuse
    /// the same worker threads instead of spawning per solve.
    /// [`SolverSpec::batch_fuse`] also creates the pool (without
    /// installing it in the workspaces — fused lanes must never dispatch
    /// on the pool they run inside), so fused drains can schedule their
    /// stream groups across it.
    pub fn build(self) -> Engine<'a, A, AnySolver> {
        let parallel_kind = matches!(self.spec.kind, SolverKind::ParallelPushRelabelBinary);
        let pool = (parallel_kind || self.spec.batch_fuse).then(|| {
            let threads = if self.spec.parallelism == 0 {
                2
            } else {
                self.spec.parallelism
            };
            WorkerPool::new(threads)
        });
        let mut engine = Engine::new(self.system, self.alloc, self.spec.build(), self.shards)
            .with_reuse(self.spec.reuse_policy())
            .with_objective(self.spec.objective)
            .with_budget(self.spec.budget)
            .with_retry_policy(self.retry)
            .with_degraded_mode(self.degraded)
            .with_slo(self.spec.slo);
        if let Some(injector) = self.injector {
            engine = engine.with_fault_injector(injector);
        }
        if let Some(capacity) = self.tracing {
            engine = engine.with_tracing(capacity);
        }
        if let Some(config) = self.flight_recorder {
            engine = engine.with_flight_recorder(config);
        }
        for shard in &mut engine.shards {
            shard.workspace.set_arena_layout(self.spec.arena_layout);
            if let (Some(pool), true) = (&pool, parallel_kind) {
                shard.workspace.set_worker_pool(pool.clone());
            }
        }
        engine.pool = pool;
        engine.batch_fuse = self.spec.batch_fuse;
        engine.lane_layout = self.spec.arena_layout;
        engine
    }
}

impl<'a, A: ReplicaSource + Sync> Engine<'a, A, AnySolver> {
    /// Starts building an engine whose solver is chosen by
    /// [`SolverKind`] instead of a concrete type parameter.
    pub fn builder(system: &'a SystemConfig, alloc: &'a A) -> EngineBuilder<'a, A> {
        EngineBuilder {
            system,
            alloc,
            spec: SolverSpec::new(SolverKind::PushRelabelBinary),
            shards: 1,
            retry: RetryPolicy::default(),
            degraded: false,
            injector: None,
            tracing: None,
            flight_recorder: None,
        }
    }
}

impl<'a, A: ReplicaSource + Sync, S: RetrievalSolver + Sync> Engine<'a, A, S> {
    /// Creates an engine with `num_shards` workers (minimum 1). Shard
    /// count only affects wall-clock time, never results.
    pub fn new(system: &'a SystemConfig, alloc: &'a A, solver: S, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        Engine {
            system,
            alloc,
            solver,
            shards: (0..num_shards).map(|_| Shard::default()).collect(),
            stats: EngineStats::default(),
            metrics: EngineMetrics::default(),
            injector: None,
            retry: RetryPolicy::default(),
            degraded: false,
            reuse: ReusePolicy::default(),
            objective: ScheduleObjective::default(),
            budget: SolveBudget::UNLIMITED,
            slo: SloPolicy::default(),
            rejections: FlightRecorder::default(),
            pool: None,
            batch_fuse: false,
            lane_layout: ArenaLayout::default(),
        }
    }

    /// Arms an anytime [`SolveBudget`] in every shard workspace: a solve
    /// whose budget expires is finalized at the best feasible bound found
    /// so far instead of running to the exact optimum, with the gap
    /// reported in [`SolveStats::anytime_gap`](SolveStats). The serving
    /// loop further tightens the armed budget per query from its SLA
    /// deadline.
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        for shard in &mut self.shards {
            shard.workspace.arm_budget(budget);
        }
        self
    }

    /// Sets the cross-query reuse policy applied to every stream: warm
    /// flow reuse between overlapping queries and/or a small per-stream
    /// schedule cache. Existing streams adopt the policy immediately.
    pub fn with_reuse(mut self, reuse: ReusePolicy) -> Self {
        self.reuse = reuse;
        for shard in &mut self.shards {
            for state in shard.states.values_mut() {
                state.set_reuse_policy(reuse);
            }
        }
        self
    }

    /// Sets the schedule objective applied to every stream: schedules
    /// keep the optimal response time but are refined toward the chosen
    /// load shape (see [`ScheduleObjective`]). Existing streams adopt the
    /// objective immediately; their cached schedules are invalidated.
    pub fn with_objective(mut self, objective: ScheduleObjective) -> Self {
        self.objective = objective;
        for shard in &mut self.shards {
            for state in shard.states.values_mut() {
                state.set_objective(objective);
            }
        }
        self
    }

    /// Installs a fault schedule: every query plans around the health in
    /// force at its arrival. Health is a pure function of the schedule
    /// and the query's arrival time, so results stay deterministic for
    /// any shard count.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Sets the replanning policy for infeasible queries (see
    /// [`RetryPolicy`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables degraded mode: queries that stay infeasible after
    /// replanning are answered best-effort, serving every bucket with a
    /// live replica and listing the rest in
    /// [`SessionOutcome::unservable`], instead of failing outright.
    pub fn with_degraded_mode(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// Installs a ring-buffer trace [`crate::obs::trace::Recorder`] of
    /// `capacity` events in every shard's workspace, so solver-phase
    /// [`TraceEvent`]s are captured during batch runs. Per-kind counts
    /// stay exact even after the ring wraps; merged counts are surfaced
    /// by [`Engine::trace_counts`] and [`Engine::metrics_snapshot`].
    /// No-op without the `trace` feature.
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        for shard in &mut self.shards {
            shard.workspace.install_recorder(capacity);
        }
        self
    }

    /// Sets the per-priority-class service-level objectives the serving
    /// loop tracks (latency targets and error budgets; see
    /// [`SloPolicy`]). Pass [`SloPolicy::disabled`] to silence all
    /// `rds_slo_*` metrics. Batch runs ignore the policy.
    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = slo;
        self
    }

    /// Replaces every shard's flight recorder (and the admission-rejection
    /// recorder) with an empty one using `config`. Retained spans are
    /// discarded; call before serving.
    pub fn with_flight_recorder(mut self, config: FlightRecorderConfig) -> Self {
        for shard in &mut self.shards {
            shard.recorder = FlightRecorder::new(config);
        }
        self.rejections = FlightRecorder::new(config);
        self
    }

    /// Snapshots the flight recorders for after-the-fact debugging: every
    /// retained [`crate::obs::span::QuerySpan`] across all shards (shard
    /// order, oldest first within a shard), the spans of rejected
    /// submissions, and merged retention statistics.
    ///
    /// Spans are recorded only by the serving loop
    /// ([`Engine::serve`](crate::serve)); after batch-only use the
    /// snapshot is empty. Render with
    /// [`Postmortem::to_chrome_trace`] or [`Postmortem::to_statusz`].
    pub fn postmortem(&self) -> Postmortem {
        let mut stats = RecorderStats::default();
        let mut spans = Vec::new();
        for shard in &self.shards {
            spans.extend(shard.recorder.spans().cloned());
            stats.merge(&shard.recorder.stats());
        }
        stats.merge(&self.rejections.stats());
        Postmortem {
            spans,
            rejections: self.rejections.spans().cloned().collect(),
            stats,
        }
    }

    /// Number of shards (worker threads used per batch).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate statistics over every batch processed so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Arena allocation events summed over every shard workspace and
    /// fused lane, monotone over the engine's lifetime. Flat between two
    /// observations means the solves in between — including fused drains
    /// checking capacity planes out of the lane free list — reused
    /// existing buffers end to end.
    pub fn arena_allocation_events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.workspace.arena_allocation_events()
                    + s.lanes
                        .iter()
                        .map(|l| l.workspace.arena_allocation_events())
                        .sum::<u64>()
            })
            .sum()
    }

    /// The engine's latency histograms, merged over every batch and shard
    /// processed so far.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The ring-buffer trace recorder of one shard, if tracing was
    /// enabled via [`Engine::with_tracing`].
    pub fn shard_recorder(&self, shard: usize) -> Option<&crate::obs::trace::Recorder> {
        self.shards.get(shard)?.workspace.recorder()
    }

    /// Per-kind [`TraceEvent`] totals summed over every shard's recorder
    /// (all zeros when tracing is off), indexed by `EventKind as usize`.
    pub fn trace_counts(&self) -> [u64; EventKind::COUNT] {
        let mut totals = [0u64; EventKind::COUNT];
        for shard in &self.shards {
            if let Some(rec) = shard.workspace.recorder() {
                for (t, &c) in totals.iter_mut().zip(rec.counts()) {
                    *t += c;
                }
            }
        }
        totals
    }

    /// A point-in-time snapshot of everything the engine measures:
    /// counters, p50/p95/p99 latency summaries and trace-event totals —
    /// plain data, exportable as Prometheus text or JSON.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stats: self.stats,
            shards: self.shards.len(),
            solve_latency_us: self.metrics.solve_latency_us.summary(),
            probes_per_solve: self.metrics.probes_per_solve.summary(),
            turnaround_us: self.metrics.turnaround_us.summary(),
            histograms: self.metrics.clone(),
            trace_counts: self.trace_counts(),
        }
    }

    /// Processes a batch of queries and returns one result per query, in
    /// input order. Per-query failures — non-monotone arrival on a
    /// stream, solver rejection, infeasibility under the current health,
    /// even a panic inside a solver — are reported in place; they never
    /// abort the rest of the batch, and results from healthy streams are
    /// always returned.
    pub fn submit_batch(
        &mut self,
        queries: &[BatchQuery],
    ) -> Vec<Result<SessionOutcome, EngineError>> {
        let started = std::time::Instant::now();
        let num_shards = self.shards.len();
        let ctx = BatchCtx {
            system: self.system,
            alloc: self.alloc,
            solver: &self.solver,
            faults: FaultConfig {
                injector: self.injector.as_ref(),
                retry: self.retry,
                degraded: self.degraded,
            },
            reuse: self.reuse,
            objective: self.objective,
        };

        // Route each query to its stream's home shard, preserving input
        // order within the shard.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (i, q) in queries.iter().enumerate() {
            by_shard[q.stream % num_shards].push(i);
        }

        // Fused drains need the shared pool; without one (or with
        // `batch_fuse` off) every shard takes the serial path.
        let fuse_pool = if self.batch_fuse {
            self.pool.clone()
        } else {
            None
        };
        let lane_layout = self.lane_layout;
        let budget = self.budget;

        let mut merged: Vec<Option<Result<SessionOutcome, EngineError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut tallies: Vec<ShardTally> = Vec::with_capacity(num_shards);
        if num_shards == 1 {
            let mut out = Vec::with_capacity(queries.len());
            let tally = match &fuse_pool {
                Some(pool) => self.shards[0].run_fused(
                    0,
                    &ctx,
                    queries,
                    &by_shard[0],
                    pool,
                    lane_layout,
                    budget,
                    &mut out,
                ),
                None => self.shards[0].run(0, &ctx, queries, &by_shard[0], &mut out),
            };
            tallies.push(tally);
            for (i, r) in out {
                merged[i] = Some(r);
            }
        } else {
            let ctx = &ctx;
            let fuse_pool = &fuse_pool;
            let collected: Vec<Option<ShardOutput>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(&by_shard)
                    .enumerate()
                    .map(|(shard_idx, (shard, indices))| {
                        scope.spawn(move || {
                            let mut out = Vec::with_capacity(indices.len());
                            // Pool dispatch is serialized across shards;
                            // the shard threads themselves already
                            // provide cross-shard parallelism.
                            let tally = match fuse_pool {
                                Some(pool) => shard.run_fused(
                                    shard_idx,
                                    ctx,
                                    queries,
                                    indices,
                                    pool,
                                    lane_layout,
                                    budget,
                                    &mut out,
                                ),
                                None => shard.run(shard_idx, ctx, queries, indices, &mut out),
                            };
                            (tally, out)
                        })
                    })
                    .collect();
                // Per-query panics are contained inside `Shard::run`; a
                // join failure means a panic escaped that containment
                // (e.g. in the shard's own bookkeeping). Record it as a
                // dead worker instead of propagating — the other shards'
                // results are still good.
                handles.into_iter().map(|h| h.join().ok()).collect()
            });
            for (shard_idx, output) in collected.into_iter().enumerate() {
                match output {
                    Some((tally, out)) => {
                        tallies.push(tally);
                        for (i, r) in out {
                            merged[i] = Some(r);
                        }
                    }
                    None => {
                        // Every query routed to the dead worker fails
                        // typed; the shard restarts with fresh stream
                        // states and a cleared workspace.
                        let mut tally = ShardTally::default();
                        tally.shard_failures += by_shard[shard_idx].len() as u64;
                        tallies.push(tally);
                        for &i in &by_shard[shard_idx] {
                            merged[i] = Some(Err(EngineError::ShardFailed { shard: shard_idx }));
                        }
                        let shard = &mut self.shards[shard_idx];
                        shard.states.clear();
                        let _ = shard.workspace.take_poisoned();
                    }
                }
            }
        }

        let results: Vec<Result<SessionOutcome, EngineError>> = merged
            .into_iter()
            .map(|r| r.expect("every query routed to exactly one shard"))
            .collect();

        self.stats.batches += 1;
        self.stats.queries += results.len() as u64;
        self.stats.elapsed += started.elapsed();
        for tally in &tallies {
            tally.accumulate(&mut self.stats, &mut self.metrics);
        }
        for r in &results {
            match r {
                Ok(out) => self.stats.solve_stats.accumulate(&out.outcome.stats),
                Err(_) => self.stats.errors += 1,
            }
        }
        self.stats.workspace_solves = self.shards.iter().map(|s| s.workspace.solves()).sum();
        let mut reuse = ReuseCounters::default();
        for shard in &self.shards {
            for state in shard.states.values() {
                reuse.merge(&state.reuse_counters());
            }
        }
        self.stats.reuse = reuse;
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SolveError;
    use crate::fault::DiskHealth;
    use crate::network::RetrievalInstance;
    use crate::pr::PushRelabelBinary;
    use crate::schedule::RetrievalOutcome;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::specs::CHEETAH;

    fn batch(streams: usize, per_stream: usize) -> Vec<BatchQuery> {
        let mut queries = Vec::new();
        for k in 0..per_stream {
            for s in 0..streams {
                let q = RangeQuery::new(s % 5, k % 5, 1 + (s + k) % 3, 1 + s % 3);
                queries.push(BatchQuery {
                    stream: s,
                    arrival: Micros::from_millis((k * 2) as u64),
                    buckets: q.buckets(5),
                });
            }
        }
        queries
    }

    #[test]
    fn batch_results_are_independent_of_shard_count() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let queries = batch(6, 4);
        let baseline: Vec<_> = {
            let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
            engine
                .submit_batch(&queries)
                .into_iter()
                .map(|r| r.map(|o| (o.outcome.response_time, o.completion)))
                .collect()
        };
        for shards in [2usize, 3, 8] {
            let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards);
            let got: Vec<_> = engine
                .submit_batch(&queries)
                .into_iter()
                .map(|r| r.map(|o| (o.outcome.response_time, o.completion)))
                .collect();
            assert_eq!(got, baseline, "{shards} shards");
        }
    }

    #[test]
    fn streams_keep_independent_load_state_across_batches() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
        let full = RangeQuery::new(0, 0, 1, 5).buckets(5);
        let q = |stream| BatchQuery {
            stream,
            arrival: Micros::ZERO,
            buckets: full.clone(),
        };
        // Stream 0 submits twice (second queues behind the first); stream
        // 1 once. A second batch continues where the first left off.
        let r1 = engine.submit_batch(&[q(0), q(1), q(0)]);
        let t = Micros::from_tenths_ms(61);
        assert_eq!(r1[0].as_ref().unwrap().outcome.response_time, t);
        assert_eq!(r1[1].as_ref().unwrap().outcome.response_time, t);
        assert_eq!(r1[2].as_ref().unwrap().outcome.response_time, t * 2);
        let r2 = engine.submit_batch(&[q(1)]);
        assert_eq!(r2[0].as_ref().unwrap().outcome.response_time, t * 2);
    }

    #[test]
    fn per_query_errors_do_not_abort_the_batch() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
        let b = RangeQuery::new(0, 0, 1, 1).buckets(5);
        let mk = |stream, ms| BatchQuery {
            stream,
            arrival: Micros::from_millis(ms),
            buckets: b.clone(),
        };
        // Stream 0 goes back in time on its second query; stream 1 is fine.
        let results = engine.submit_batch(&[mk(0, 10), mk(0, 5), mk(1, 0), mk(0, 10)]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(EngineError::Session(
                SessionError::NonMonotoneArrival { .. }
            ))
        ));
        assert!(results[2].is_ok());
        // The stream survived its bad query.
        assert!(results[3].is_ok());
        assert_eq!(engine.stats().queries, 4);
        assert_eq!(engine.stats().errors, 1);
        assert_eq!(engine.stats().batches, 1);
    }

    #[test]
    fn stats_accumulate_solver_work() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let queries = batch(3, 3);
        let results = engine.submit_batch(&queries);
        let want: u64 = results
            .iter()
            .map(|r| r.as_ref().unwrap().outcome.stats.resume_calls)
            .sum();
        assert_eq!(engine.stats().solve_stats.resume_calls, want);
        assert_eq!(engine.stats().workspace_solves, 9);
        assert!(engine.stats().queries_per_sec() > 0.0);
    }

    /// A solver that panics whenever the query contains a poison bucket —
    /// simulates a latent solver bug for containment tests.
    #[derive(Clone, Copy)]
    struct PanicOnBucket(rds_decluster::query::Bucket);

    impl RetrievalSolver for PanicOnBucket {
        fn name(&self) -> &'static str {
            "panic-on-bucket"
        }
        fn solve_in(
            &self,
            inst: &RetrievalInstance,
            ws: &mut Workspace,
        ) -> Result<RetrievalOutcome, SolveError> {
            assert!(!inst.buckets.contains(&self.0), "injected solver bug");
            PushRelabelBinary.solve_in(inst, ws)
        }
    }

    #[test]
    fn panic_is_contained_to_the_poisoned_query() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let poison = RangeQuery::new(3, 3, 1, 1).buckets(5)[0];
        for shards in [1usize, 2, 4] {
            let mut engine = Engine::new(&system, &alloc, PanicOnBucket(poison), shards);
            let good = RangeQuery::new(0, 0, 1, 2).buckets(5);
            let bad = RangeQuery::new(3, 3, 1, 1).buckets(5);
            let mk = |stream, ms, buckets: &Vec<_>| BatchQuery {
                stream,
                arrival: Micros::from_millis(ms),
                buckets: buckets.clone(),
            };
            let results = engine.submit_batch(&[
                mk(0, 0, &good),
                mk(1, 0, &bad),
                mk(2, 0, &good),
                mk(1, 5, &good),
            ]);
            assert!(results[0].is_ok(), "{shards} shards");
            assert_eq!(
                results[1].as_ref().unwrap_err(),
                &EngineError::ShardFailed { shard: 1 % shards }
            );
            assert!(results[2].is_ok());
            // The poisoned stream restarts cleanly on its next query.
            assert!(results[3].is_ok());
            assert_eq!(engine.stats().shard_failures, 1);
            assert_eq!(engine.stats().errors, 1);
        }
    }

    /// Canonical comparison key for fused-vs-serial equivalence: the
    /// full schedule (bucket→disk assignments), response time and
    /// completion — bit-identical means all of these match.
    #[allow(clippy::type_complexity)]
    fn outcome_key(
        r: &Result<SessionOutcome, EngineError>,
    ) -> Result<(Micros, Micros, Vec<(Bucket, usize)>), EngineError> {
        r.as_ref()
            .map(|o| {
                (
                    o.outcome.response_time,
                    o.completion,
                    o.outcome.schedule.assignments().to_vec(),
                )
            })
            .map_err(|e| *e)
    }

    #[test]
    fn fused_batches_are_bit_identical_to_serial() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let queries = batch(6, 4);
        for layout in [ArenaLayout::Wide, ArenaLayout::Compact] {
            let spec = SolverSpec::new(SolverKind::PushRelabelBinary)
                .reuse(ReusePolicy::warm())
                .arena_layout(layout);
            let baseline: Vec<_> = {
                let mut engine = Engine::builder(&system, &alloc).solver_spec(spec).build();
                let got = engine.submit_batch(&queries);
                assert_eq!(engine.stats().fused_batches, 0);
                got.iter().map(outcome_key).collect()
            };
            for shards in [1usize, 2, 4] {
                let mut engine = Engine::builder(&system, &alloc)
                    .solver_spec(spec.batch_fuse(true).parallelism(3))
                    .shards(shards)
                    .build();
                let got: Vec<_> = engine
                    .submit_batch(&queries)
                    .iter()
                    .map(outcome_key)
                    .collect();
                assert_eq!(got, baseline, "{layout:?} {shards} shards");
                assert!(engine.stats().fused_batches >= 1, "fused path engaged");
                // Shards that own a single stream group fall back to the
                // serial path, so the fused count is a (non-empty) subset.
                let fused = engine.stats().fused_queries;
                assert!(fused >= 1 && fused <= queries.len() as u64);
                // A second batch recycles the lane free list.
                let again: Vec<_> = engine
                    .submit_batch(&queries)
                    .iter()
                    .map(outcome_key)
                    .collect();
                let n: usize = engine.shards.iter().map(|s| s.lanes.len()).sum();
                assert!(n >= 2, "lanes retained for recycling");
                drop(again);
            }
        }
    }

    #[test]
    fn fused_single_stream_falls_back_to_serial() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let queries = batch(1, 4); // one stream: nothing to fuse
        let mut engine = Engine::builder(&system, &alloc)
            .solver_spec(SolverSpec::new(SolverKind::PushRelabelBinary).batch_fuse(true))
            .build();
        let results = engine.submit_batch(&queries);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(engine.stats().fused_batches, 0);
        assert_eq!(engine.stats().fused_queries, 0);
    }

    #[test]
    fn fused_panic_containment_matches_serial() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let poison = RangeQuery::new(3, 3, 1, 1).buckets(5)[0];
        let good = RangeQuery::new(0, 0, 1, 2).buckets(5);
        let bad = RangeQuery::new(3, 3, 1, 1).buckets(5);
        let mk = |stream, ms, buckets: &Vec<_>| BatchQuery {
            stream,
            arrival: Micros::from_millis(ms),
            buckets: buckets.clone(),
        };
        let mut engine = Engine::new(&system, &alloc, PanicOnBucket(poison), 1);
        engine.batch_fuse = true;
        engine.pool = Some(rds_flow::parallel::WorkerPool::new(2));
        let results = engine.submit_batch(&[
            mk(0, 0, &good),
            mk(1, 0, &bad),
            mk(2, 0, &good),
            mk(1, 5, &good),
        ]);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &EngineError::ShardFailed { shard: 0 }
        );
        assert!(results[2].is_ok());
        // The poisoned stream restarts cleanly on its next query (same
        // lane, same fused drain).
        assert!(results[3].is_ok());
        assert_eq!(engine.stats().shard_failures, 1);
        assert_eq!(engine.stats().fused_batches, 1);
    }

    #[test]
    fn fused_trace_counts_include_lane_plane_checkouts() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let queries = batch(4, 2);
        let mut engine = Engine::builder(&system, &alloc)
            .solver_spec(
                SolverSpec::new(SolverKind::PushRelabelBinary)
                    .reuse(ReusePolicy::warm())
                    .batch_fuse(true),
            )
            .tracing(128)
            .build();
        let results = engine.submit_batch(&queries);
        assert!(results.iter().all(|r| r.is_ok()));
        let counts = engine.trace_counts();
        assert!(
            counts[EventKind::PlaneCheckout as usize] > 0,
            "lane checkouts visible through the shard recorder"
        );
        let reg = engine.metrics_snapshot().to_registry();
        assert!(engine.stats().fused_batches >= 1);
        assert!(reg.to_prometheus().contains("rds_fuse_batches_total"));
    }

    #[test]
    fn offline_disks_reroute_and_infeasible_is_typed() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let b = RangeQuery::new(0, 1, 1, 1).buckets(5);
        // Find the two replica disks of that single bucket.
        let replicas: Vec<usize> = alloc.replicas(b[0]).iter().collect();
        assert!(replicas.len() >= 2);

        // One replica down: the query reroutes to the survivor.
        let injector = FaultInjector::pinned(&HealthMap::with_offline(&replicas[..1]));
        let mut engine =
            Engine::new(&system, &alloc, PushRelabelBinary, 2).with_fault_injector(injector);
        let q = BatchQuery {
            stream: 0,
            arrival: Micros::ZERO,
            buckets: b.clone(),
        };
        let results = engine.submit_batch(std::slice::from_ref(&q));
        let out = results[0].as_ref().unwrap();
        let (_, disk) = out.outcome.schedule.assignments()[0];
        assert!(!replicas[..1].contains(&disk));

        // All replicas down: typed infeasibility naming the bucket.
        let injector = FaultInjector::pinned(&HealthMap::with_offline(&replicas));
        let mut engine =
            Engine::new(&system, &alloc, PushRelabelBinary, 2).with_fault_injector(injector);
        let results = engine.submit_batch(std::slice::from_ref(&q));
        assert_eq!(
            results[0].as_ref().unwrap_err(),
            &EngineError::Session(SessionError::Solve(SolveError::Infeasible {
                bucket: Some(b[0]),
                delivered: 0,
                required: 1,
            }))
        );
    }

    #[test]
    fn retry_replans_after_recovery() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let b = RangeQuery::new(0, 1, 1, 1).buckets(5);
        let replicas: Vec<usize> = alloc.replicas(b[0]).iter().collect();

        // Both replicas go down at t=0 and recover at t=3ms; the query
        // arrives at t=1ms. With backoff 1ms and 3 retries, the probe at
        // t=3ms sees the recovery and the re-solve succeeds.
        let mut injector = FaultInjector::new();
        for &d in &replicas {
            injector.schedule(Micros::ZERO, d, DiskHealth::Offline);
            injector.schedule(Micros::from_millis(3), d, DiskHealth::Healthy);
        }
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1)
            .with_fault_injector(injector)
            .with_retry_policy(RetryPolicy {
                max_retries: 3,
                backoff: Micros::from_millis(1),
            });
        let q = BatchQuery {
            stream: 0,
            arrival: Micros::from_millis(1),
            buckets: b.clone(),
        };
        let results = engine.submit_batch(std::slice::from_ref(&q));
        assert!(results[0].is_ok(), "recovered replica should serve");
        assert_eq!(engine.stats().retries, 1);
        assert_eq!(engine.stats().errors, 0);
    }

    #[test]
    fn degraded_mode_serves_the_retrievable_subset() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let buckets = RangeQuery::new(0, 0, 1, 5).buckets(5);
        // Kill every replica of exactly one bucket.
        let victim = buckets[2];
        let dead: Vec<usize> = alloc.replicas(victim).iter().collect();
        let injector = FaultInjector::pinned(&HealthMap::with_offline(&dead));

        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2)
            .with_fault_injector(injector)
            .with_degraded_mode(true);
        let q = BatchQuery {
            stream: 0,
            arrival: Micros::ZERO,
            buckets: buckets.clone(),
        };
        let results = engine.submit_batch(std::slice::from_ref(&q));
        let out = results[0].as_ref().unwrap();
        assert!(!out.is_complete());
        assert!(out.unservable.contains(&victim));
        assert_eq!(
            out.outcome.schedule.len() + out.unservable.len(),
            buckets.len()
        );
        assert_eq!(engine.stats().degraded_solves, 1);
        assert!(engine.stats().dropped_buckets >= 1);
        assert_eq!(engine.stats().errors, 0);
    }
}
