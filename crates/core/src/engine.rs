//! Sharded batch retrieval engine.
//!
//! An [`Engine`] serves many independent query streams — think one stream
//! per client or per tenant — over a single storage system and
//! allocation. Each stream is a full [`SessionState`] with its own disk
//! load feedback; streams are partitioned across shards by
//! `stream % num_shards`, each shard owning one [`Workspace`] and the
//! states of its streams. With more than one shard,
//! [`Engine::submit_batch`] runs the shards on scoped worker threads.
//!
//! Because a stream lives wholly inside one shard and every shard
//! processes its queries in input order, batch results are deterministic:
//! the same batch produces the same outcomes for any shard count
//! (including 1). Cross-stream interactions don't exist by construction —
//! streams model *independent* sessions, the unit of parallelism the
//! paper's multi-query discussion permits.

use crate::error::SessionError;
use crate::schedule::SolveStats;
use crate::session::{SessionOutcome, SessionState};
use crate::solver::RetrievalSolver;
use crate::workspace::Workspace;
use rds_decluster::allocation::ReplicaSource;
use rds_decluster::query::Bucket;
use rds_storage::model::SystemConfig;
use rds_storage::time::Micros;
use std::collections::HashMap;
use std::time::Duration;

/// One query of a batch: which stream it belongs to, when it arrives,
/// and what it asks for.
#[derive(Clone, Debug)]
pub struct BatchQuery {
    /// Stream (independent session) identifier. Arrivals must be monotone
    /// non-decreasing *within* a stream; streams don't constrain each
    /// other.
    pub stream: usize,
    /// Arrival time on the stream's virtual clock.
    pub arrival: Micros,
    /// The requested buckets.
    pub buckets: Vec<Bucket>,
}

/// Aggregate counters across everything an [`Engine`] has processed.
#[derive(Clone, Copy, Debug, Default)]
#[non_exhaustive]
pub struct EngineStats {
    /// Queries submitted (successful or not).
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Batches processed.
    pub batches: u64,
    /// Wall-clock time spent inside `submit_batch`.
    pub elapsed: Duration,
    /// Solver work counters summed over all successful queries.
    pub solve_stats: SolveStats,
    /// Total solves that ran in the engine's workspaces — equals the
    /// number of successful solver invocations that reused pre-allocated
    /// buffers instead of allocating fresh ones.
    pub workspace_solves: u64,
}

impl EngineStats {
    /// Query throughput over the accumulated `submit_batch` wall time.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }
}

/// One worker's slice of the engine: a reusable workspace plus the states
/// of the streams this shard owns.
#[derive(Debug, Default)]
struct Shard {
    workspace: Workspace,
    states: HashMap<usize, SessionState>,
}

impl Shard {
    /// Runs this shard's queries (given by index into `queries`) in input
    /// order, appending `(original_index, result)` pairs to `out`.
    fn run<A: ReplicaSource + ?Sized, S: RetrievalSolver + ?Sized>(
        &mut self,
        system: &SystemConfig,
        alloc: &A,
        solver: &S,
        queries: &[BatchQuery],
        indices: &[usize],
        out: &mut Vec<(usize, Result<SessionOutcome, SessionError>)>,
    ) {
        for &i in indices {
            let q = &queries[i];
            let state = self
                .states
                .entry(q.stream)
                .or_insert_with(|| SessionState::new(system.num_disks()));
            let result = state.submit_with(
                system,
                alloc,
                solver,
                &mut self.workspace,
                q.arrival,
                &q.buckets,
            );
            out.push((i, result));
        }
    }
}

/// A batch front-end that shards independent query streams across worker
/// threads, each with a persistent [`Workspace`] and per-stream
/// [`SessionState`]s.
pub struct Engine<'a, A: ReplicaSource + Sync, S: RetrievalSolver + Sync> {
    system: &'a SystemConfig,
    alloc: &'a A,
    solver: S,
    shards: Vec<Shard>,
    stats: EngineStats,
}

impl<'a, A: ReplicaSource + Sync, S: RetrievalSolver + Sync> Engine<'a, A, S> {
    /// Creates an engine with `num_shards` workers (minimum 1). Shard
    /// count only affects wall-clock time, never results.
    pub fn new(system: &'a SystemConfig, alloc: &'a A, solver: S, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        Engine {
            system,
            alloc,
            solver,
            shards: (0..num_shards).map(|_| Shard::default()).collect(),
            stats: EngineStats::default(),
        }
    }

    /// Number of shards (worker threads used per batch).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate statistics over every batch processed so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Processes a batch of queries and returns one result per query, in
    /// input order. Per-query failures (non-monotone arrival on a stream,
    /// solver rejection) are reported in place; they never abort the rest
    /// of the batch.
    pub fn submit_batch(
        &mut self,
        queries: &[BatchQuery],
    ) -> Vec<Result<SessionOutcome, SessionError>> {
        let started = std::time::Instant::now();
        let num_shards = self.shards.len();

        // Route each query to its stream's home shard, preserving input
        // order within the shard.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (i, q) in queries.iter().enumerate() {
            by_shard[q.stream % num_shards].push(i);
        }

        let mut merged: Vec<Option<Result<SessionOutcome, SessionError>>> =
            (0..queries.len()).map(|_| None).collect();
        if num_shards == 1 {
            let mut out = Vec::with_capacity(queries.len());
            self.shards[0].run(
                self.system,
                self.alloc,
                &self.solver,
                queries,
                &by_shard[0],
                &mut out,
            );
            for (i, r) in out {
                merged[i] = Some(r);
            }
        } else {
            let system = self.system;
            let alloc = self.alloc;
            let solver = &self.solver;
            let collected: Vec<Vec<(usize, Result<SessionOutcome, SessionError>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(&by_shard)
                        .map(|(shard, indices)| {
                            scope.spawn(move || {
                                let mut out = Vec::with_capacity(indices.len());
                                shard.run(system, alloc, solver, queries, indices, &mut out);
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect()
                });
            for out in collected {
                for (i, r) in out {
                    merged[i] = Some(r);
                }
            }
        }

        let results: Vec<Result<SessionOutcome, SessionError>> = merged
            .into_iter()
            .map(|r| r.expect("every query routed to exactly one shard"))
            .collect();

        self.stats.batches += 1;
        self.stats.queries += results.len() as u64;
        self.stats.elapsed += started.elapsed();
        for r in &results {
            match r {
                Ok(out) => self.stats.solve_stats.accumulate(&out.outcome.stats),
                Err(_) => self.stats.errors += 1,
            }
        }
        self.stats.workspace_solves = self.shards.iter().map(|s| s.workspace.solves()).sum();
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr::PushRelabelBinary;
    use rds_decluster::allocation::Placement;
    use rds_decluster::orthogonal::OrthogonalAllocation;
    use rds_decluster::query::{Query, RangeQuery};
    use rds_storage::specs::CHEETAH;

    fn batch(streams: usize, per_stream: usize) -> Vec<BatchQuery> {
        let mut queries = Vec::new();
        for k in 0..per_stream {
            for s in 0..streams {
                let q = RangeQuery::new(s % 5, k % 5, 1 + (s + k) % 3, 1 + s % 3);
                queries.push(BatchQuery {
                    stream: s,
                    arrival: Micros::from_millis((k * 2) as u64),
                    buckets: q.buckets(5),
                });
            }
        }
        queries
    }

    #[test]
    fn batch_results_are_independent_of_shard_count() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let queries = batch(6, 4);
        let baseline: Vec<_> = {
            let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
            engine
                .submit_batch(&queries)
                .into_iter()
                .map(|r| r.map(|o| (o.outcome.response_time, o.completion)))
                .collect()
        };
        for shards in [2usize, 3, 8] {
            let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, shards);
            let got: Vec<_> = engine
                .submit_batch(&queries)
                .into_iter()
                .map(|r| r.map(|o| (o.outcome.response_time, o.completion)))
                .collect();
            assert_eq!(got, baseline, "{shards} shards");
        }
    }

    #[test]
    fn streams_keep_independent_load_state_across_batches() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
        let full = RangeQuery::new(0, 0, 1, 5).buckets(5);
        let q = |stream| BatchQuery {
            stream,
            arrival: Micros::ZERO,
            buckets: full.clone(),
        };
        // Stream 0 submits twice (second queues behind the first); stream
        // 1 once. A second batch continues where the first left off.
        let r1 = engine.submit_batch(&[q(0), q(1), q(0)]);
        let t = Micros::from_tenths_ms(61);
        assert_eq!(r1[0].as_ref().unwrap().outcome.response_time, t);
        assert_eq!(r1[1].as_ref().unwrap().outcome.response_time, t);
        assert_eq!(r1[2].as_ref().unwrap().outcome.response_time, t * 2);
        let r2 = engine.submit_batch(&[q(1)]);
        assert_eq!(r2[0].as_ref().unwrap().outcome.response_time, t * 2);
    }

    #[test]
    fn per_query_errors_do_not_abort_the_batch() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 2);
        let b = RangeQuery::new(0, 0, 1, 1).buckets(5);
        let mk = |stream, ms| BatchQuery {
            stream,
            arrival: Micros::from_millis(ms),
            buckets: b.clone(),
        };
        // Stream 0 goes back in time on its second query; stream 1 is fine.
        let results = engine.submit_batch(&[mk(0, 10), mk(0, 5), mk(1, 0), mk(0, 10)]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SessionError::NonMonotoneArrival { .. })
        ));
        assert!(results[2].is_ok());
        // The stream survived its bad query.
        assert!(results[3].is_ok());
        assert_eq!(engine.stats().queries, 4);
        assert_eq!(engine.stats().errors, 1);
        assert_eq!(engine.stats().batches, 1);
    }

    #[test]
    fn stats_accumulate_solver_work() {
        let system = SystemConfig::homogeneous(CHEETAH, 5);
        let alloc = OrthogonalAllocation::new(5, Placement::SingleSite);
        let mut engine = Engine::new(&system, &alloc, PushRelabelBinary, 1);
        let queries = batch(3, 3);
        let results = engine.submit_batch(&queries);
        let want: u64 = results
            .iter()
            .map(|r| r.as_ref().unwrap().outcome.stats.resume_calls)
            .sum();
        assert_eq!(engine.stats().solve_stats.resume_calls, want);
        assert_eq!(engine.stats().workspace_solves, 9);
        assert!(engine.stats().queries_per_sec() > 0.0);
    }
}
