//! Retrieval schedules and solver outcomes.

use crate::network::RetrievalInstance;
use rds_decluster::query::Bucket;
use rds_flow::graph::FlowGraph;
use rds_storage::model::Disk;
use rds_storage::time::Micros;

/// A complete retrieval schedule: which disk serves each requested bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    assignments: Vec<(Bucket, usize)>,
}

impl Schedule {
    /// Builds a schedule from explicit assignments.
    pub fn new(assignments: Vec<(Bucket, usize)>) -> Schedule {
        Schedule { assignments }
    }

    /// Extracts the schedule from a solved flow: each bucket vertex has
    /// exactly one saturated forward edge to a disk vertex.
    ///
    /// # Panics
    ///
    /// Panics if some bucket carries no unit of flow (i.e. the flow is not
    /// a complete retrieval).
    pub fn from_flow(inst: &RetrievalInstance, g: &FlowGraph) -> Schedule {
        let mut assignments = Vec::with_capacity(inst.query_size());
        for (i, &b) in inst.buckets.iter().enumerate() {
            let v = inst.bucket_vertex(i);
            let disk = g
                .out_edges(v)
                .iter()
                .find_map(|&e| {
                    let e = e as usize;
                    (e.is_multiple_of(2) && g.flow(e) > 0).then(|| inst.disk_of_vertex(g.target(e)))
                })
                .unwrap_or_else(|| panic!("bucket {b} is not retrieved by the flow"));
            assignments.push((b, disk));
        }
        Schedule { assignments }
    }

    /// Number of scheduled buckets.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The `(bucket, disk)` assignments in bucket order.
    pub fn assignments(&self) -> &[(Bucket, usize)] {
        &self.assignments
    }

    /// Buckets retrieved per disk.
    pub fn per_disk_counts(&self, num_disks: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_disks];
        for &(_, d) in &self.assignments {
            counts[d] += 1;
        }
        counts
    }

    /// Response time of this schedule on the given disks: the maximum
    /// completion time over disks serving at least one bucket.
    pub fn response_time(&self, disks: &[Disk]) -> Micros {
        self.per_disk_counts(disks.len())
            .iter()
            .zip(disks)
            .filter(|(&k, _)| k > 0)
            .map(|(&k, d)| d.completion_time(k))
            .max()
            .unwrap_or(Micros::ZERO)
    }
}

/// Work counters reported by every solver, for algorithm comparisons and
/// the paper's execution-time figures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Full from-scratch max-flow computations (black-box algorithms).
    pub maxflow_calls: u64,
    /// Flow-conserving resume calls (integrated algorithms).
    pub resume_calls: u64,
    /// Binary-search probes over the budget range.
    pub probes: u64,
    /// `IncrementMinCost` capacity-increment steps.
    pub increments: u64,
    /// Augmenting-path searches (Ford-Fulkerson solvers).
    pub dfs_calls: u64,
}

/// The result of solving one retrieval instance.
#[derive(Clone, Debug)]
pub struct RetrievalOutcome {
    /// The optimal schedule found.
    pub schedule: Schedule,
    /// Optimal response time (identical across all correct solvers).
    pub response_time: Micros,
    /// Total flow delivered (equals the query size).
    pub flow_value: u64,
    /// Work counters.
    pub stats: SolveStats,
}

impl RetrievalOutcome {
    /// Assembles an outcome from a solved graph.
    pub fn from_flow(inst: &RetrievalInstance, g: &FlowGraph, stats: SolveStats) -> Self {
        let schedule = if inst.query_size() == 0 {
            Schedule::new(Vec::new())
        } else {
            Schedule::from_flow(inst, g)
        };
        let response_time = schedule.response_time(&inst.disks);
        RetrievalOutcome {
            flow_value: schedule.len() as u64,
            schedule,
            response_time,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::{CHEETAH, VERTEX};

    #[test]
    fn per_disk_counts_aggregate() {
        let s = Schedule::new(vec![
            (Bucket::new(0, 0), 1),
            (Bucket::new(0, 1), 1),
            (Bucket::new(1, 0), 3),
        ]);
        assert_eq!(s.per_disk_counts(4), vec![0, 2, 0, 1]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn response_time_ignores_idle_disks() {
        let sys = SystemConfig::homogeneous(CHEETAH, 3);
        let s = Schedule::new(vec![(Bucket::new(0, 0), 0), (Bucket::new(0, 1), 0)]);
        // Disk 0 serves 2 buckets: 2 * 6.1ms; disks 1-2 idle.
        assert_eq!(s.response_time(sys.disks()), Micros::from_tenths_ms(122));
    }

    #[test]
    fn response_time_of_empty_schedule_is_zero() {
        let sys = SystemConfig::homogeneous(VERTEX, 2);
        let s = Schedule::new(vec![]);
        assert_eq!(s.response_time(sys.disks()), Micros::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn response_time_takes_max_over_used() {
        let sys = SystemConfig::new(vec![rds_storage::model::Site {
            name: "s".into(),
            disks: vec![
                rds_storage::model::Disk::unloaded(CHEETAH), // 6.1ms
                rds_storage::model::Disk::unloaded(VERTEX),  // 0.5ms
            ],
        }]);
        let s = Schedule::new(vec![
            (Bucket::new(0, 0), 0),
            (Bucket::new(0, 1), 1),
            (Bucket::new(1, 1), 1),
        ]);
        // disk0: 6.1, disk1: 1.0 → max 6.1ms.
        assert_eq!(s.response_time(sys.disks()), Micros::from_tenths_ms(61));
    }
}
