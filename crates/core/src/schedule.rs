//! Retrieval schedules and solver outcomes.

use crate::error::SolveError;
use crate::network::RetrievalInstance;
use crate::spec::ArenaLayout;
use rds_decluster::query::Bucket;
use rds_flow::graph::{ArenaIndex, FlowGraph};
use rds_storage::model::Disk;
use rds_storage::time::Micros;

/// A complete retrieval schedule: which disk serves each requested bucket.
#[must_use]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    assignments: Vec<(Bucket, usize)>,
}

impl Schedule {
    /// Builds a schedule from explicit assignments.
    pub fn new(assignments: Vec<(Bucket, usize)>) -> Schedule {
        Schedule { assignments }
    }

    /// Extracts the schedule from a solved flow: each bucket vertex has
    /// exactly one saturated forward edge to a disk vertex.
    ///
    /// Returns [`SolveError::IncompleteFlow`] naming the first bucket
    /// that carries no unit of flow (i.e. the flow is not a complete
    /// retrieval).
    pub fn try_from_flow<W: ArenaIndex>(
        inst: &RetrievalInstance,
        g: &FlowGraph<W>,
    ) -> Result<Schedule, SolveError> {
        let mut assignments = Vec::with_capacity(inst.query_size());
        for (i, &b) in inst.buckets.iter().enumerate() {
            let v = inst.bucket_vertex(i);
            let disk = g
                .out_edges(v)
                .iter()
                .find_map(|&e| {
                    let e = e as usize;
                    (e.is_multiple_of(2) && g.flow(e) > 0).then(|| inst.disk_of_vertex(g.target(e)))
                })
                .ok_or(SolveError::IncompleteFlow { bucket: b })?;
            assignments.push((b, disk));
        }
        Ok(Schedule { assignments })
    }

    /// Re-derives every assignment from the (possibly rebalanced) flow
    /// in place, without reallocating. The flow must still retrieve
    /// every bucket — the refiner's cycle cancellations guarantee that.
    pub(crate) fn refresh_from_flow<W: ArenaIndex>(
        &mut self,
        inst: &RetrievalInstance,
        g: &FlowGraph<W>,
    ) -> Result<(), SolveError> {
        debug_assert_eq!(self.assignments.len(), inst.query_size());
        for (i, slot) in self.assignments.iter_mut().enumerate() {
            let v = inst.bucket_vertex(i);
            let disk = g
                .out_edges(v)
                .iter()
                .find_map(|&e| {
                    let e = e as usize;
                    (e.is_multiple_of(2) && g.flow(e) > 0).then(|| inst.disk_of_vertex(g.target(e)))
                })
                .ok_or(SolveError::IncompleteFlow { bucket: slot.0 })?;
            slot.1 = disk;
        }
        Ok(())
    }

    /// Panicking variant of [`Schedule::try_from_flow`], for callers that
    /// have already verified the flow is complete.
    ///
    /// # Panics
    ///
    /// Panics if some bucket carries no unit of flow.
    pub fn from_flow<W: ArenaIndex>(inst: &RetrievalInstance, g: &FlowGraph<W>) -> Schedule {
        Schedule::try_from_flow(inst, g).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of scheduled buckets.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The `(bucket, disk)` assignments in bucket order.
    pub fn assignments(&self) -> &[(Bucket, usize)] {
        &self.assignments
    }

    /// Buckets retrieved per disk.
    pub fn per_disk_counts(&self, num_disks: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_disks];
        for &(_, d) in &self.assignments {
            counts[d] += 1;
        }
        counts
    }

    /// Response time of this schedule on the given disks: the maximum
    /// completion time over disks serving at least one bucket.
    pub fn response_time(&self, disks: &[Disk]) -> Micros {
        self.disk_loads(disks)
            .into_iter()
            .max()
            .unwrap_or(Micros::ZERO)
    }

    /// Per-disk load: each disk's completion time under this schedule
    /// ([`Micros::ZERO`] for disks serving no bucket). One entry per
    /// disk, in disk order.
    pub fn disk_loads(&self, disks: &[Disk]) -> Vec<Micros> {
        self.per_disk_counts(disks.len())
            .iter()
            .zip(disks)
            .map(|(&k, d)| {
                if k > 0 {
                    d.completion_time(k)
                } else {
                    Micros::ZERO
                }
            })
            .collect()
    }

    /// Population variance of [`Schedule::disk_loads`] across all disks,
    /// in milliseconds squared — the load-balance figure of merit
    /// reported by the `schedule_refine` bench.
    pub fn load_variance(&self, disks: &[Disk]) -> f64 {
        if disks.is_empty() {
            return 0.0;
        }
        let loads: Vec<f64> = self
            .disk_loads(disks)
            .into_iter()
            .map(|l| l.as_millis_f64())
            .collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / loads.len() as f64
    }

    /// Total weighted load: the sum over disks of buckets served times
    /// per-bucket access cost — the objective value minimized by
    /// [`ScheduleObjective::MinTotalLoad`](crate::spec::ScheduleObjective::MinTotalLoad).
    pub fn total_weighted_load(&self, disks: &[Disk]) -> Micros {
        self.per_disk_counts(disks.len())
            .iter()
            .zip(disks)
            .map(|(&k, d)| d.cost() * k)
            .sum()
    }
}

/// Work counters reported by every solver, for algorithm comparisons and
/// the paper's execution-time figures.
///
/// Marked `#[non_exhaustive]`: future solvers may add counters, so
/// construct instances with [`SolveStats::default`] and update fields.
#[must_use]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolveStats {
    /// Full from-scratch max-flow computations (black-box algorithms).
    pub maxflow_calls: u64,
    /// Flow-conserving resume calls (integrated algorithms).
    pub resume_calls: u64,
    /// Binary-search probes over the budget range.
    pub probes: u64,
    /// `IncrementMinCost` capacity-increment steps.
    pub increments: u64,
    /// Augmenting-path searches (Ford-Fulkerson solvers).
    pub dfs_calls: u64,
    /// Push operations performed by push-relabel engines (Algorithms
    /// 4–6), the PR-side analogue of `dfs_calls`.
    pub pushes: u64,
    /// Relabel operations performed by push-relabel engines.
    pub relabels: u64,
    /// Min-cost refinement passes run after the optimal response time
    /// was fixed (at most one per solve).
    pub refine_passes: u64,
    /// Negative residual cycles canceled across refinement passes.
    pub refine_cycles: u64,
    /// Residual arcs flow was pushed along while canceling cycles.
    pub refine_moved: u64,
    /// Negative-cycle searches run while refining, including the final
    /// search that proves the schedule cycle-optimal.
    pub refine_searches: u64,
    /// Solves cut short by an expired [`SolveBudget`](crate::spec::SolveBudget)
    /// (0 or 1 per solve; summed across solves by [`SolveStats::accumulate`]).
    pub budget_expirations: u64,
    /// Upper bound on the achieved-vs-optimal response-time gap of an
    /// anytime solve: achieved response time minus the tightest known
    /// lower bound on the optimum at expiry. [`Micros::ZERO`] when the
    /// solve ran to completion (the result is exactly optimal).
    /// Aggregated by `max` in [`SolveStats::accumulate`] — a rollup
    /// reports the worst gap of any constituent solve.
    pub anytime_gap: Micros,
    /// The arena width the solve ran in: [`ArenaLayout::Compact`] or
    /// [`ArenaLayout::Wide`] once a solver has produced the outcome
    /// ([`ArenaLayout::Auto`] only in a default-constructed stats value).
    /// [`SolveStats::accumulate`] keeps the other side's layout, so a
    /// rollup reports the most recent solve's width.
    pub arena_layout: ArenaLayout,
}

impl SolveStats {
    /// Adds another solve's counters into this rollup (used by the batch
    /// engine's aggregate statistics).
    pub fn accumulate(&mut self, other: &SolveStats) {
        self.maxflow_calls += other.maxflow_calls;
        self.resume_calls += other.resume_calls;
        self.probes += other.probes;
        self.increments += other.increments;
        self.dfs_calls += other.dfs_calls;
        self.pushes += other.pushes;
        self.relabels += other.relabels;
        self.refine_passes += other.refine_passes;
        self.refine_cycles += other.refine_cycles;
        self.refine_moved += other.refine_moved;
        self.refine_searches += other.refine_searches;
        self.budget_expirations += other.budget_expirations;
        self.anytime_gap = self.anytime_gap.max(other.anytime_gap);
        if other.arena_layout != ArenaLayout::Auto {
            self.arena_layout = other.arena_layout;
        }
    }
}

/// The result of solving one retrieval instance.
///
/// Marked `#[non_exhaustive]`: downstream code reads the fields but must
/// obtain instances from the solvers (or
/// [`RetrievalOutcome::try_from_flow`]), so future fields can be added
/// without breaking callers.
#[must_use]
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct RetrievalOutcome {
    /// The optimal schedule found.
    pub schedule: Schedule,
    /// Optimal response time (identical across all correct solvers).
    pub response_time: Micros,
    /// Total flow delivered (equals the query size).
    pub flow_value: u64,
    /// Work counters.
    pub stats: SolveStats,
}

impl RetrievalOutcome {
    /// Assembles an outcome from a solved graph, or reports the first
    /// bucket the flow fails to retrieve.
    pub fn try_from_flow<W: ArenaIndex>(
        inst: &RetrievalInstance,
        g: &FlowGraph<W>,
        mut stats: SolveStats,
    ) -> Result<Self, SolveError> {
        let schedule = if inst.query_size() == 0 {
            Schedule::new(Vec::new())
        } else {
            Schedule::try_from_flow(inst, g)?
        };
        // The one place every solver's outcome passes through: record the
        // width the solve's graph was monomorphized over.
        stats.arena_layout = if W::NAME == "i32" {
            ArenaLayout::Compact
        } else {
            ArenaLayout::Wide
        };
        let response_time = schedule.response_time(&inst.disks);
        Ok(RetrievalOutcome {
            flow_value: schedule.len() as u64,
            schedule,
            response_time,
            stats,
        })
    }

    /// Panicking variant of [`RetrievalOutcome::try_from_flow`].
    ///
    /// # Panics
    ///
    /// Panics if the flow does not retrieve every bucket.
    pub fn from_flow<W: ArenaIndex>(
        inst: &RetrievalInstance,
        g: &FlowGraph<W>,
        stats: SolveStats,
    ) -> Self {
        RetrievalOutcome::try_from_flow(inst, g, stats).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_storage::model::SystemConfig;
    use rds_storage::specs::{CHEETAH, VERTEX};

    #[test]
    fn per_disk_counts_aggregate() {
        let s = Schedule::new(vec![
            (Bucket::new(0, 0), 1),
            (Bucket::new(0, 1), 1),
            (Bucket::new(1, 0), 3),
        ]);
        assert_eq!(s.per_disk_counts(4), vec![0, 2, 0, 1]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn response_time_ignores_idle_disks() {
        let sys = SystemConfig::homogeneous(CHEETAH, 3);
        let s = Schedule::new(vec![(Bucket::new(0, 0), 0), (Bucket::new(0, 1), 0)]);
        // Disk 0 serves 2 buckets: 2 * 6.1ms; disks 1-2 idle.
        assert_eq!(s.response_time(sys.disks()), Micros::from_tenths_ms(122));
    }

    #[test]
    fn response_time_of_empty_schedule_is_zero() {
        let sys = SystemConfig::homogeneous(VERTEX, 2);
        let s = Schedule::new(vec![]);
        assert_eq!(s.response_time(sys.disks()), Micros::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn response_time_takes_max_over_used() {
        let sys = SystemConfig::builder()
            .site("s")
            .disk(CHEETAH) // 6.1ms
            .disk(VERTEX) // 0.5ms
            .build();
        let s = Schedule::new(vec![
            (Bucket::new(0, 0), 0),
            (Bucket::new(0, 1), 1),
            (Bucket::new(1, 1), 1),
        ]);
        // disk0: 6.1, disk1: 1.0 → max 6.1ms.
        assert_eq!(s.response_time(sys.disks()), Micros::from_tenths_ms(61));
    }

    #[test]
    fn disk_loads_variance_and_total_weighted_load() {
        let sys = SystemConfig::builder()
            .site("s")
            .disk(CHEETAH) // 6.1ms
            .disk(VERTEX) // 0.5ms
            .build();
        let s = Schedule::new(vec![
            (Bucket::new(0, 0), 0),
            (Bucket::new(0, 1), 1),
            (Bucket::new(1, 1), 1),
        ]);
        assert_eq!(
            s.disk_loads(sys.disks()),
            vec![Micros::from_tenths_ms(61), Micros::from_tenths_ms(10)]
        );
        // 1 bucket * 6.1ms + 2 buckets * 0.5ms.
        assert_eq!(
            s.total_weighted_load(sys.disks()),
            Micros::from_tenths_ms(71)
        );
        // Loads 6.1ms and 1.0ms: mean 3.55, variance 2.55^2.
        assert!((s.load_variance(sys.disks()) - 6.5025).abs() < 1e-9);
        assert_eq!(Schedule::new(vec![]).load_variance(sys.disks()), 0.0);
        assert_eq!(Schedule::new(vec![]).load_variance(&[]), 0.0);
    }
}
