//! Dependency-free utilities shared across the workspace.
//!
//! The only resident today is [`SplitMix64`], a small deterministic PRNG
//! used for workload generation and randomized tests. It replaces the
//! external `rand` crate so the whole workspace builds offline; the API
//! mirrors the subset of `rand::Rng` the workspace uses (`gen_range`,
//! `gen_bool`, raw words).

pub mod rng;

pub use rng::SplitMix64;
