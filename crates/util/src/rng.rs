//! SplitMix64 — the 64-bit mixing generator of Steele, Lea & Flood
//! ("Fast splittable pseudorandom number generators", OOPSLA 2014).
//!
//! One `u64` of state, an additive Weyl sequence and a finalizer of two
//! xor-shift-multiply rounds. Passes BigCrush, and — unlike lagged or
//! counter generators — every seed gives an independent-looking stream,
//! which is exactly what the seeded experiment configurations need.

use std::ops::{Range, RangeInclusive};

/// A deterministic 64-bit PRNG with `rand`-like ergonomics.
///
/// ```
/// use rds_util::SplitMix64;
/// let mut rng = SplitMix64::seed_from_u64(42);
/// let die = rng.gen_range(1..=6u64);
/// assert!((1..=6).contains(&die));
/// let i = rng.gen_range(0..10usize);
/// assert!(i < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Every seed, including 0, is valid.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly random `u64` (alias of [`next_u64`](Self::next_u64),
    /// matching the `rng.gen::<u64>()` call sites it replaced).
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard [0,1) double construction.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift bounded sampling; the bias for the
        // bounds used here (≤ 2^32) is below 2^-32 and irrelevant for
        // workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Integer ranges [`SplitMix64::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 1234567, from the published algorithm.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let first = rng.next_u64();
        let mut again = SplitMix64::seed_from_u64(1234567);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, rng.next_u64());
    }

    #[test]
    fn seeds_are_reproducible_and_distinct() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(99);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=5u64);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(-4..=4i64);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn range_mean_is_central() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0..100u64)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = SplitMix64::seed_from_u64(5);
        assert_eq!(rng.gen_range(4..=4u32), 4);
        assert_eq!(rng.gen_range(9..10usize), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        SplitMix64::seed_from_u64(0).gen_range(5..5usize);
    }
}
